"""Matrix coverage: every model x GPU x mode combination behaves."""

import pytest

from repro.core import evaluate_model, train_model
from repro.gpu import gpu

MODELS = ("e2e", "lw", "kw")
GPUS = ("A100", "TITAN RTX")


class TestModelGpuMatrix:
    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("gpu_name", GPUS)
    def test_train_and_predict(self, small_split, roster_index,
                               model_name, gpu_name):
        train, test = small_split
        model = train_model(train, model_name, gpu=gpu_name)
        for name in ("resnet50", "densenet121"):
            prediction = model.predict_network(roster_index[name], 512)
            assert prediction > 0
        curve = evaluate_model(model, test, roster_index, gpu=gpu_name,
                               batch_size=512)
        assert curve.mean_error < 1.0

    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("gpu_name", GPUS)
    def test_persistence_round_trip(self, small_split, roster_index,
                                    tmp_path, model_name, gpu_name):
        from repro.core import load_model, save_model
        train, _ = small_split
        model = train_model(train, model_name, gpu=gpu_name)
        restored = load_model(save_model(
            model, tmp_path / f"{model_name}-{gpu_name}.json"))
        net = roster_index["resnet18"]
        assert restored.predict_network(net, 64) == pytest.approx(
            model.predict_network(net, 64))

    @pytest.mark.parametrize("gpu_name", GPUS)
    def test_predictions_ordered_by_gpu_speed(self, small_split,
                                              roster_index, gpu_name):
        """Each GPU's own KW model reflects that GPU's speed: the A100
        predicts faster times than the TITAN RTX for every network."""
        train, _ = small_split
        if gpu_name != "A100":
            pytest.skip("pairwise comparison runs once")
        fast = train_model(train, "kw", gpu="A100")
        slow = train_model(train, "kw", gpu="TITAN RTX")
        for name in ("resnet18", "vgg11", "mobilenet_v2"):
            net = roster_index[name]
            assert (fast.predict_network(net, 512)
                    < slow.predict_network(net, 512))

    def test_training_mode_matrix(self, small_roster, roster_index):
        """Both GPUs train and predict in training mode too."""
        from repro import dataset
        data = dataset.build_dataset(
            small_roster, [gpu(name) for name in GPUS],
            batch_sizes=[64, 512], training=True)
        test_names = {"resnet50"}
        train = data.filter(
            networks=set(data.network_names()) - test_names)
        for gpu_name in GPUS:
            model = train_model(train, "kw", gpu=gpu_name)
            assert model.mode == "training"
            prediction = model.predict_network(roster_index["resnet50"],
                                               512)
            measured = data.filter(
                gpu=gpu_name, batch_size=512,
                networks=test_names).network_rows[0].e2e_us
            assert prediction / measured == pytest.approx(1.0, abs=0.2)
