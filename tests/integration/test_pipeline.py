"""End-to-end integration tests: dataset → training → prediction.

These exercise the full Figure-10 workflow on a small campaign, including
persistence round-trips and the cross-model accuracy ladder.
"""

import pytest

from repro import core, dataset, zoo
from repro.gpu import SimulatedGPU, gpu


@pytest.fixture(scope="module")
def pipeline(small_split, small_roster):
    train, test = small_split
    index = core.networks_by_name(small_roster)
    return train, test, index


class TestFullWorkflow:
    def test_dataset_to_prediction(self, pipeline):
        train, test, index = pipeline
        model = core.train_model(train, "kw", gpu="A100")
        curve = core.evaluate_model(model, test, index, gpu="A100",
                                    batch_size=512)
        assert curve.mean_error < 0.15

    def test_persistence_round_trip_preserves_model_quality(
            self, pipeline, tmp_path):
        """Saving and reloading the dataset must train identical models."""
        train, test, index = pipeline
        from repro.dataset import load_dataset, save_dataset
        reloaded = load_dataset(save_dataset(train, tmp_path / "d"))
        direct = core.train_model(train, "e2e", gpu="A100")
        via_csv = core.train_model(reloaded, "e2e", gpu="A100")
        assert via_csv.fit.slope == pytest.approx(direct.fit.slope)
        assert via_csv.fit.intercept == pytest.approx(direct.fit.intercept)

    def test_prediction_without_execution(self, pipeline):
        """The trained model predicts a brand-new network from structure
        alone — the paper's central workflow."""
        train, _, _ = pipeline
        model = core.train_model(train, "kw", gpu="A100")
        unseen = zoo.resnet34()  # not part of the small roster
        predicted = model.predict_network(unseen, 512)
        measured = SimulatedGPU(gpu("A100")).run_network(unseen, 512).e2e_us
        assert predicted / measured == pytest.approx(1.0, abs=0.25)

    def test_cross_batch_generalisation(self, pipeline):
        """O3: training at full utilisation transfers to other batches."""
        train, _, index = pipeline
        model = core.train_model(train, "kw", gpu="A100", batch_size=512)
        net = index["resnet50"]
        device = SimulatedGPU(gpu("A100"))
        for batch in (64, 256):
            predicted = model.predict_network(net, batch)
            measured = device.run_network(net, batch).e2e_us
            assert predicted / measured == pytest.approx(1.0, abs=0.35)

    def test_inter_gpu_workflow(self, pipeline):
        """Train on two GPUs, predict a third via bandwidth transfer."""
        train, test, index = pipeline
        igkw = core.train_inter_gpu_model(
            train, [gpu("A100"), gpu("TITAN RTX")])
        predictor = igkw.for_gpu(gpu("TITAN RTX"))
        curve = core.evaluate_model(predictor, test, index,
                                    gpu="TITAN RTX", batch_size=512)
        assert curve.mean_error < 0.3


class TestTransformerExtension:
    def test_kw_model_handles_transformers(self):
        """Section 5.4's extension: the same machinery predicts BERTs."""
        nets = zoo.text_roster()
        data = dataset.build_dataset(nets, [gpu("A100")], batch_sizes=[64])
        train, test = dataset.train_test_split(data, seed=1)
        model = core.train_model(train, "kw", gpu="A100", batch_size=64)
        curve = core.evaluate_model(model, test,
                                    core.networks_by_name(nets),
                                    gpu="A100", batch_size=64)
        assert curve.mean_error < 0.25


class TestMixedWorkload:
    def test_single_dataset_mixes_cnns_and_transformers(self):
        nets = [zoo.resnet18(), zoo.bert("tiny")]
        data = dataset.build_dataset(nets, [gpu("A100")], batch_sizes=[64])
        assert set(data.network_names()) == {"resnet18", "bert_tiny"}
        model = core.train_model(data, "kw", gpu="A100", batch_size=64)
        for net in nets:
            assert model.predict_network(net, 64) > 0
