"""Robustness integration tests: seeds, re-profiling, and corrupt inputs."""

import pytest

from repro import core, dataset, zoo
from repro.gpu import SimulatedGPU, gpu


class TestMeasurementNoiseRobustness:
    def test_model_transfers_across_profiling_sessions(self, small_roster,
                                                       roster_index):
        """A model trained on one profiling session (seed 0) predicts a
        re-profiled session (seed 1) of the same hardware: measurement
        noise must not be what the model learned."""
        session_a = dataset.build_dataset(small_roster, [gpu("A100")],
                                          batch_sizes=[512], seed=0)
        session_b = dataset.build_dataset(small_roster, [gpu("A100")],
                                          batch_sizes=[512], seed=1)
        model = core.train_model(session_a, "kw", gpu="A100")
        curve = core.evaluate_model(model, session_b, roster_index,
                                    gpu="A100", batch_size=512)
        assert curve.mean_error < 0.12

    def test_sessions_differ_but_only_slightly(self, small_roster):
        a = dataset.build_dataset(small_roster[:2], [gpu("A100")],
                                  batch_sizes=[512], seed=0)
        b = dataset.build_dataset(small_roster[:2], [gpu("A100")],
                                  batch_sizes=[512], seed=1)
        for row_a, row_b in zip(a.network_rows, b.network_rows):
            assert row_a.e2e_us != row_b.e2e_us
            assert row_a.e2e_us == pytest.approx(row_b.e2e_us, rel=0.05)


class TestCorruptInputs:
    def test_malformed_csv_rejected(self, tmp_path):
        directory = tmp_path / "bad"
        directory.mkdir()
        for name in ("kernels.csv", "layers.csv", "networks.csv"):
            (directory / name).write_text("not,a,real,header\n1,2,3,4\n")
        with pytest.raises(TypeError):
            dataset.load_dataset(directory)

    def test_truncated_numeric_field_rejected(self, small_dataset,
                                              tmp_path):
        directory = dataset.save_dataset(small_dataset, tmp_path / "d")
        path = directory / "networks.csv"
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace(lines[1].split(",")[-4], "not_a_number")
        path.write_text("\n".join(lines))
        with pytest.raises(ValueError):
            dataset.load_dataset(directory)

    def test_model_json_with_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"format_version": 1, "kind": "alien"}')
        with pytest.raises(ValueError):
            core.load_model(path)


class TestPredictionInputValidation:
    def test_zero_batch_rejected_everywhere(self, small_split,
                                            roster_index):
        train, _ = small_split
        model = core.train_model(train, "kw", gpu="A100")
        with pytest.raises(ValueError):
            model.predict_network(roster_index["resnet18"], 0)

    def test_huge_batch_still_predicts(self, small_split, roster_index):
        """Extrapolating far above the training range stays finite and
        roughly linear (O3)."""
        train, _ = small_split
        model = core.train_model(train, "kw", gpu="A100")
        net = roster_index["resnet18"]
        p512 = model.predict_network(net, 512)
        p4096 = model.predict_network(net, 4096)
        assert p4096 / p512 == pytest.approx(8.0, rel=0.3)
