"""Tests for the one-shot reproduction driver."""

import pytest

from repro.reproduce import PAPER_ERRORS, run_reproduction


@pytest.fixture(scope="module")
def results(tmp_path_factory):
    out = tmp_path_factory.mktemp("repro-run")
    return out, run_reproduction(out, scale="small", seed=3)


class TestRunReproduction:
    def test_report_written(self, results):
        out, _ = results
        report = (out / "reproduction.txt").read_text()
        for section in ("campaign:", "Headline error rates",
                        "KW model per GPU", "Table 2",
                        "total reproduction time"):
            assert section in report

    def test_all_headline_metrics_returned(self, results):
        _, measured = results
        assert set(PAPER_ERRORS) <= set(measured)
        for name in ("A100", "V100"):
            assert f"kw:{name}" in measured

    def test_error_ladder_holds_even_at_small_scale(self, results):
        _, measured = results
        assert measured["kw"] < measured["e2e"]

    def test_table2_errors_small(self, results):
        _, measured = results
        for batch in (64, 128, 256):
            assert measured[f"table2:{batch}"] < 0.15

    def test_cli_wrapper(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["reproduce", "--scale", "small", "--seed", "3",
                     "--out", str(tmp_path / "r")])
        assert code == 0
        assert "Headline error rates" in capsys.readouterr().out
