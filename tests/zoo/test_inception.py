"""Tests for Inception-v3."""

import pytest

from repro.zoo.inception import inception_v3


class TestInceptionV3:
    def test_published_sizes(self):
        net = inception_v3()
        assert net.total_params() / 1e6 == pytest.approx(23.8, rel=0.03)
        assert net.total_flops(1) / 1e9 == pytest.approx(5.7, rel=0.05)

    def test_native_resolution(self):
        net = inception_v3()
        assert net.input_shape.height == 299

    def test_output_logits(self):
        assert inception_v3().output_shape(4).dims == (4, 1000)

    def test_asymmetric_convolutions_present(self):
        kernels = {info.layer.kernel_size
                   for info in inception_v3().layer_infos(1)
                   if info.kind == "CONV"}
        assert (1, 7) in kernels
        assert (7, 1) in kernels
        assert (1, 3) in kernels

    def test_resolution_variants(self):
        small = inception_v3(resolution=224)
        assert small.name == "inception_v3_r224"
        assert small.total_flops(1) < inception_v3().total_flops(1)
        assert small.total_params() == inception_v3().total_params()

    def test_too_small_resolution_rejected(self):
        with pytest.raises(ValueError):
            inception_v3(resolution=32)

    def test_executes_on_simulated_gpu(self):
        from repro.gpu import SimulatedGPU, gpu
        result = SimulatedGPU(gpu("A100")).run_network(inception_v3(), 8)
        assert result.e2e_us > 0
        # the asymmetric convs lower through the im2col path
        names = {k.kernel_name for k in result.kernel_executions}
        assert any(name.startswith("im2col_k1x7") for name in names)
        assert any(name.startswith("im2col_k7x1") for name in names)
