"""Tests for the model registry and rosters."""

import pytest

from repro.zoo import registry


class TestBuild:
    def test_build_known_model(self):
        assert registry.build("resnet50").name == "resnet50"

    def test_build_unknown_model(self):
        with pytest.raises(KeyError):
            registry.build("resnet9000")

    def test_model_names_sorted(self):
        names = registry.model_names()
        assert names == sorted(names)

    def test_every_registered_model_constructs(self):
        for name in registry.model_names():
            net = registry.build(name)
            assert len(net) > 0
            # shape inference must succeed end to end
            net.shapes(2)


class TestRosters:
    def test_scales_nest(self):
        small = {n.name for n in registry.imagenet_roster("small")}
        medium = {n.name for n in registry.imagenet_roster("medium")}
        full = {n.name for n in registry.imagenet_roster("full")}
        assert small <= full
        assert medium <= full
        assert len(small) < len(medium) < len(full)

    def test_full_roster_is_large_and_unique(self):
        roster = registry.imagenet_roster("full")
        names = [net.name for net in roster]
        assert len(names) == len(set(names))
        assert len(names) >= 100

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            registry.imagenet_roster("gigantic")

    def test_text_roster(self):
        roster = registry.text_roster()
        assert all(net.family == "transformer" for net in roster)

    def test_scheduling_roster_is_paper_list(self):
        names = {net.name for net in registry.scheduling_roster()}
        assert names == {
            "resnet44", "resnet50", "resnet62", "resnet77",
            "densenet121", "densenet161", "densenet169", "densenet201",
            "shufflenet_v1",
        }

    def test_disaggregation_roster_is_paper_list(self):
        names = {net.name for net in registry.disaggregation_roster()}
        assert names == {"resnet50", "resnet77", "densenet121",
                         "densenet161", "shufflenet_v1"}

    def test_full_roster_spans_families(self):
        families = {net.family for net in registry.imagenet_roster("full")}
        assert {"resnet", "vgg", "densenet", "mobilenet", "shufflenet",
                "efficientnet"} <= families
