"""Tests for the Vision Transformer constructors."""

import pytest

from repro.nn.layers.reshape import ToSequence
from repro.nn.tensor import TensorShape
from repro.zoo.vit import vit, vit_base, vit_small, vit_tiny


class TestToSequence:
    def test_shape(self):
        layer = ToSequence()
        out = layer.infer_shape([TensorShape.image(2, 768, 14, 14)])
        assert out.dims == (2, 196, 768)

    def test_rejects_non_image(self):
        with pytest.raises(ValueError):
            ToSequence().infer_shape([TensorShape.flat(2, 10)])

    def test_preserves_numel(self):
        shape = TensorShape.image(4, 192, 14, 14)
        assert ToSequence().infer_shape([shape]).numel() == shape.numel()


class TestViT:
    def test_base_parameter_count(self):
        # published ViT-B/16: ~86M parameters
        net = vit_base()
        assert net.total_params() / 1e6 == pytest.approx(86, rel=0.03)

    def test_base_flops(self):
        # published ViT-B/16: ~17.6 GFLOPs at 224x224
        assert vit_base().total_flops(1) / 1e9 == pytest.approx(17.6,
                                                                rel=0.05)

    def test_tiny_parameter_count(self):
        assert vit_tiny().total_params() / 1e6 == pytest.approx(5.7,
                                                                rel=0.05)

    def test_size_points_monotone(self):
        assert (vit_tiny().total_flops(1) < vit_small().total_flops(1)
                < vit_base().total_flops(1))

    def test_patch_size_trades_sequence_length(self):
        # larger patches: fewer tokens, cheaper attention
        assert vit_tiny(patch=32).total_flops(1) < vit_tiny(
            patch=16).total_flops(1)

    def test_family_and_kinds(self):
        net = vit_base()
        assert net.family == "vit"
        kinds = net.kinds()
        assert "CONV" in kinds          # the patchify conv
        assert "AttnScores" in kinds
        assert "ToSequence" in kinds

    def test_classifier_output(self):
        assert vit_tiny().output_shape(4).dims[0] == 4
        assert vit_tiny().output_shape(4).dims[-1] == 1000

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            vit(100, 2, 3)          # heads do not divide hidden
        with pytest.raises(ValueError):
            vit(192, 2, 3, patch=15)   # patch does not divide 224


class TestViTExecution:
    def test_runs_on_simulated_gpu(self):
        from repro.gpu import SimulatedGPU, gpu
        result = SimulatedGPU(gpu("A100")).run_network(vit_tiny(), 8)
        assert result.e2e_us > 0

    def test_kw_model_covers_vit(self, small_split):
        """A KW model trained on a roster without ViTs degrades to the
        LW fallback for attention layers rather than failing."""
        from repro.core import train_model
        train, _ = small_split
        model = train_model(train, "kw", gpu="A100")
        assert model.predict_network(vit_tiny(), 64) > 0
