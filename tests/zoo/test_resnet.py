"""Tests for the ResNet family constructors."""

import pytest

from repro.zoo.resnet import (
    custom_resnets,
    resnet,
    resnet18,
    resnet34,
    resnet44,
    resnet50,
    resnet62,
    resnet77,
    resnet101,
    resnet152,
    resnext50_32x4d,
    resnext101_32x8d,
    wide_resnet50_2,
)


class TestStandardDepths:
    @pytest.mark.parametrize("builder, params_m", [
        (resnet18, 11.7), (resnet34, 21.8), (resnet50, 25.6),
        (resnet101, 44.5), (resnet152, 60.2),
    ])
    def test_parameter_counts_match_torchvision(self, builder, params_m):
        net = builder()
        assert net.total_params() / 1e6 == pytest.approx(params_m, rel=0.02)

    def test_output_is_logits(self):
        assert resnet50().output_shape(4).dims == (4, 1000)

    def test_family_label(self):
        assert resnet50().family == "resnet"

    def test_depth_naming_convention(self):
        # depth = 3 * sum(blocks) + 2 for bottleneck nets
        assert resnet([3, 4, 6, 3]).name == "resnet50"
        assert resnet([3, 4, 15, 3]).name == "resnet77"


class TestNonStandardDepths:
    def test_paper_custom_depths_exist(self):
        assert resnet44().name == "resnet44"
        assert resnet62().name == "resnet62"
        assert resnet77().name == "resnet77"

    def test_custom_depth_ordering(self):
        # more blocks => more FLOPs, monotonically
        f44 = resnet44().total_flops(1)
        f50 = resnet50().total_flops(1)
        f62 = resnet62().total_flops(1)
        f77 = resnet77().total_flops(1)
        assert f44 < f50 < f62 < f77

    def test_custom_roster_unique_names(self):
        names = [net.name for net in custom_resnets()]
        assert len(names) == len(set(names))

    def test_width_multiplier_scales_flops(self):
        narrow = resnet([3, 4, 6, 3], width=32, name="narrow")
        wide = resnet([3, 4, 6, 3], width=128, name="wide")
        assert wide.total_flops(1) > 4 * narrow.total_flops(1)


class TestResNeXtAndWide:
    @pytest.mark.parametrize("builder, params_m, gflops", [
        (resnext50_32x4d, 25.0, 4.27),
        (resnext101_32x8d, 88.8, 16.5),
        (wide_resnet50_2, 68.9, 11.4),
    ])
    def test_published_sizes(self, builder, params_m, gflops):
        net = builder()
        assert net.total_params() / 1e6 == pytest.approx(params_m,
                                                         rel=0.02)
        assert net.total_flops(1) / 1e9 == pytest.approx(gflops, rel=0.03)

    def test_resnext_uses_grouped_convs(self):
        infos = resnext50_32x4d().layer_infos(1)
        assert any(info.kind == "CONV" and 1 < info.layer.groups < 64
                   for info in infos)

    def test_groups_require_bottleneck(self):
        with pytest.raises(ValueError):
            resnet([2, 2, 2, 2], bottleneck=False, groups=32)


class TestValidation:
    def test_rejects_wrong_stage_count(self):
        with pytest.raises(ValueError):
            resnet([3, 4, 6])

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            resnet([3, 0, 6, 3])

    def test_basic_blocks_shallower_than_bottleneck(self):
        basic = resnet([2, 2, 2, 2], bottleneck=False)
        assert basic.name == "resnet18"
        assert len(basic) < len(resnet50())

    def test_shapes_propagate_at_large_batch(self):
        # full shape inference at the training batch size must succeed
        assert resnet50().output_shape(512).batch == 512
