"""Tests for the remaining CNN family constructors."""

import pytest

from repro.zoo import (
    alexnet,
    densenet,
    densenet121,
    densenet161,
    densenet169,
    densenet201,
    efficientnet,
    googlenet,
    mobilenet_v2,
    shufflenet_v1,
    squeezenet,
    vgg,
    vgg11,
    vgg16,
    vgg19,
)
from repro.zoo.vgg import custom_vggs


class TestVGG:
    @pytest.mark.parametrize("builder, params_m", [
        (vgg11, 132.9), (vgg16, 138.4), (vgg19, 143.7),
    ])
    def test_parameter_counts(self, builder, params_m):
        net = builder()
        # BN variants add ~0.1M of scale/shift parameters
        assert net.total_params() / 1e6 == pytest.approx(params_m, rel=0.02)

    def test_custom_vggs_unique_names(self):
        names = [net.name for net in custom_vggs()]
        assert len(names) == len(set(names))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            vgg((2, 2, 3, 3))

    def test_family_label(self):
        assert vgg16().family == "vgg"


class TestDenseNet:
    @pytest.mark.parametrize("builder, params_m", [
        (densenet121, 8.0), (densenet161, 28.7), (densenet169, 14.1),
        (densenet201, 20.0),
    ])
    def test_parameter_counts(self, builder, params_m):
        net = builder()
        assert net.total_params() / 1e6 == pytest.approx(params_m, rel=0.03)

    def test_depth_naming(self):
        assert densenet([6, 12, 24, 16]).name == "densenet121"

    def test_concat_growth(self):
        # each dense layer adds growth_rate channels before transition
        net = densenet121()
        assert net.output_shape(1).dims == (1, 1000)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            densenet([6, 12, 24])


class TestMobileNet:
    def test_parameter_count(self):
        assert mobilenet_v2().total_params() / 1e6 == pytest.approx(
            3.5, rel=0.03)

    def test_width_multiplier_monotone(self):
        small = mobilenet_v2(0.5)
        large = mobilenet_v2(1.5)
        assert small.total_flops(1) < large.total_flops(1)

    def test_depthwise_present(self):
        infos = mobilenet_v2().layer_infos(1)
        assert any(info.kind == "CONV" and info.layer.is_depthwise
                   for info in infos)

    def test_rejects_nonpositive_mult(self):
        with pytest.raises(ValueError):
            mobilenet_v2(0.0)


class TestShuffleNet:
    def test_group_variants(self):
        for groups in (1, 2, 3, 4, 8):
            net = shufflenet_v1(groups=groups)
            assert net.output_shape(2).dims == (2, 1000)

    def test_channel_shuffle_present(self):
        assert "ChannelShuffle" in shufflenet_v1().kinds()

    def test_channel_scale_monotone(self):
        base = shufflenet_v1(channel_scale=1.0)
        wide = shufflenet_v1(channel_scale=2.0)
        assert wide.total_flops(1) > 2 * base.total_flops(1)

    def test_rejects_unknown_groups(self):
        with pytest.raises(ValueError):
            shufflenet_v1(groups=5)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            shufflenet_v1(channel_scale=-1)


class TestSmallModels:
    def test_alexnet_params(self):
        assert alexnet().total_params() / 1e6 == pytest.approx(61.1, rel=0.02)

    def test_squeezenet_params(self):
        assert squeezenet().total_params() / 1e6 == pytest.approx(
            1.24, rel=0.03)

    def test_googlenet_has_inception_concats(self):
        assert "Concat" in googlenet().kinds()

    def test_googlenet_params(self):
        assert googlenet().total_params() / 1e6 == pytest.approx(6.6, rel=0.05)


class TestEfficientNet:
    def test_b0_params(self):
        assert efficientnet("b0").total_params() / 1e6 == pytest.approx(
            5.3, rel=0.05)

    def test_compound_scaling_monotone(self):
        flops = [efficientnet(v).total_flops(1)
                 for v in ("b0", "b1", "b2", "b3")]
        assert flops == sorted(flops)

    def test_squeeze_excite_present(self):
        assert "Mul" in efficientnet("b0").kinds()

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            efficientnet("b9")
