"""Tests for the BERT-style transformer constructors."""

import pytest

from repro.zoo.transformer import bert, text_classifier, transformer_roster


class TestBert:
    def test_base_parameter_count(self):
        # published BERT-base: ~110M parameters
        net = bert("base")
        assert net.total_params() / 1e6 == pytest.approx(110, rel=0.03)

    def test_size_points_monotone(self):
        params = [bert(s).total_params()
                  for s in ("tiny", "mini", "small", "base", "large")]
        assert params == sorted(params)

    def test_input_is_token_ids(self):
        net = bert("tiny")
        assert net.input_shape.dtype == "int64"
        assert net.input_shape.rank == 2

    def test_family_label(self):
        assert bert("tiny").family == "transformer"

    def test_rejects_unknown_size(self):
        with pytest.raises(ValueError):
            bert("huge")

    def test_decomposed_attention_layers_present(self):
        kinds = bert("tiny").kinds()
        assert "AttnScores" in kinds
        assert "AttnContext" in kinds
        assert "Softmax" in kinds


class TestTextClassifier:
    def test_seq_len_scales_flops_superlinearly(self):
        # attention is quadratic in sequence length
        short = text_classifier(256, 4, 4, seq_len=64, name="s")
        long = text_classifier(256, 4, 4, seq_len=256, name="l")
        assert long.total_flops(1) > 4 * short.total_flops(1)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            text_classifier(100, 2, 3)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            text_classifier(128, 0, 2)

    def test_classifier_head_shape(self):
        net = text_classifier(128, 2, 2, seq_len=32, num_classes=5)
        assert net.output_shape(4).dims == (4, 32, 5)


class TestRoster:
    def test_roster_unique_names(self):
        names = [net.name for net in transformer_roster()]
        assert len(names) == len(set(names))

    def test_roster_spans_seq_lens(self):
        roster = transformer_roster(seq_lens=(64, 128))
        assert any("_s64" in net.name for net in roster)
        assert any("_s128" in net.name for net in roster)
