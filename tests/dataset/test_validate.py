"""Tests for dataset integrity validation."""

import dataclasses

import pytest

from repro.dataset import PerformanceDataset, validate_dataset


class TestCleanDataset:
    def test_built_dataset_is_valid(self, small_dataset):
        report = validate_dataset(small_dataset)
        assert report.ok, report.render()

    def test_counts_reported(self, small_dataset):
        report = validate_dataset(small_dataset)
        assert report.counts["kernel rows"] == len(small_dataset)
        assert report.counts["distinct networks"] == len(
            small_dataset.network_names())

    def test_render_mentions_status(self, small_dataset):
        assert "OK" in validate_dataset(small_dataset).render()

    def test_empty_dataset_is_trivially_valid(self):
        assert validate_dataset(PerformanceDataset()).ok


class TestCorruptionDetection:
    def _corrupt(self, dataset, table, index, **changes):
        rows = list(getattr(dataset, table))
        rows[index] = dataclasses.replace(rows[index], **changes)
        copy = PerformanceDataset(
            kernel_rows=list(dataset.kernel_rows),
            layer_rows=list(dataset.layer_rows),
            network_rows=list(dataset.network_rows))
        setattr(copy, table, rows)
        return copy

    def test_negative_kernel_duration_detected(self, small_dataset):
        bad = self._corrupt(small_dataset, "kernel_rows", 0,
                            duration_us=-1.0)
        report = validate_dataset(bad)
        assert not report.ok
        assert any("duration" in e for e in report.errors)

    def test_unknown_mode_detected(self, small_dataset):
        bad = self._corrupt(small_dataset, "kernel_rows", 0, mode="magic")
        assert not validate_dataset(bad).ok

    def test_sum_mismatch_detected(self, small_dataset):
        bad = self._corrupt(small_dataset, "network_rows", 0,
                            kernel_time_us=1.0)
        report = validate_dataset(bad)
        assert any("sum to" in e for e in report.errors)

    def test_kernel_count_mismatch_detected(self, small_dataset):
        row = small_dataset.network_rows[0]
        bad = self._corrupt(small_dataset, "network_rows", 0,
                            n_kernels=row.n_kernels + 5)
        report = validate_dataset(bad)
        assert any("kernel rows but" in e for e in report.errors)

    def test_duplicate_point_detected(self, small_dataset):
        copy = PerformanceDataset(
            kernel_rows=list(small_dataset.kernel_rows),
            layer_rows=list(small_dataset.layer_rows),
            network_rows=list(small_dataset.network_rows)
            + [small_dataset.network_rows[0]])
        report = validate_dataset(copy)
        assert any("duplicate" in e for e in report.errors)

    def test_error_rendering_truncates(self, small_dataset):
        rows = [dataclasses.replace(r, duration_us=-1.0)
                for r in small_dataset.kernel_rows[:40]]
        bad = PerformanceDataset(kernel_rows=rows)
        text = validate_dataset(bad).render()
        assert "more errors" in text
