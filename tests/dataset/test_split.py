"""Tests for train/test partitioning."""

import pytest

from repro.dataset import split_networks, train_test_split


class TestSplitNetworks:
    def test_partition_is_disjoint_and_complete(self, small_dataset):
        train, test = split_networks(small_dataset, 0.25, seed=1)
        names = set(small_dataset.network_names())
        assert train | test == names
        assert train & test == set()

    def test_fraction_respected(self, small_dataset):
        _, test = split_networks(small_dataset, 0.25, seed=1)
        assert len(test) == round(0.25 * len(
            small_dataset.network_names()))

    def test_seed_determinism(self, small_dataset):
        a = split_networks(small_dataset, 0.25, seed=5)
        b = split_networks(small_dataset, 0.25, seed=5)
        assert a == b

    def test_different_seeds_differ(self, small_dataset):
        a = split_networks(small_dataset, 0.25, seed=5)
        b = split_networks(small_dataset, 0.25, seed=6)
        assert a != b

    def test_always_keeps_train_nonempty(self, small_dataset):
        train, _ = split_networks(small_dataset, 0.99, seed=1)
        assert len(train) >= 1

    def test_rejects_bad_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            split_networks(small_dataset, 0.0)
        with pytest.raises(ValueError):
            split_networks(small_dataset, 1.0)


class TestTrainTestSplit:
    def test_no_leakage_across_tables(self, small_dataset):
        train, test = train_test_split(small_dataset, 0.25, seed=2)
        train_names = set(train.network_names())
        test_names = set(test.network_names())
        assert train_names & test_names == set()
        assert all(r.network in train_names for r in train.kernel_rows)
        assert all(r.network in test_names for r in test.kernel_rows)

    def test_rows_conserved(self, small_dataset):
        train, test = train_test_split(small_dataset, 0.25, seed=2)
        assert len(train) + len(test) == len(small_dataset)
