"""Tests for CSV dataset persistence."""

import pytest

from repro.dataset import load_dataset, save_dataset


class TestRoundTrip:
    def test_save_creates_three_tables(self, small_dataset, tmp_path):
        directory = save_dataset(small_dataset, tmp_path / "data")
        for name in ("kernels.csv", "layers.csv", "networks.csv"):
            assert (directory / name).exists()

    def test_round_trip_preserves_rows(self, small_dataset, tmp_path):
        directory = save_dataset(small_dataset, tmp_path / "data")
        loaded = load_dataset(directory)
        assert loaded.kernel_rows == small_dataset.kernel_rows
        assert loaded.layer_rows == small_dataset.layer_rows
        assert loaded.network_rows == small_dataset.network_rows

    def test_round_trip_preserves_types(self, small_dataset, tmp_path):
        directory = save_dataset(small_dataset, tmp_path / "data")
        loaded = load_dataset(directory)
        row = loaded.kernel_rows[0]
        assert isinstance(row.batch_size, int)
        assert isinstance(row.flops, float)
        assert isinstance(row.duration_us, float)

    def test_missing_table_rejected(self, small_dataset, tmp_path):
        directory = save_dataset(small_dataset, tmp_path / "data")
        (directory / "layers.csv").unlink()
        with pytest.raises(FileNotFoundError):
            load_dataset(directory)

    def test_load_nonexistent_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope")
