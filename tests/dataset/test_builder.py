"""Tests for dataset construction and filtering."""

import pytest

from repro.dataset import build_dataset, rows_from_execution
from repro.dataset.builder import _estimated_memory_gb
from repro.gpu import SimulatedGPU, gpu
from repro.zoo import resnet18, vgg16


class TestRowsFromExecution:
    @pytest.fixture(scope="class")
    def result(self):
        return SimulatedGPU(gpu("A100")).run_network(resnet18(), 8)

    def test_network_row_aggregates(self, result):
        kernel_rows, layer_rows, network_row = rows_from_execution(result)
        assert network_row.n_kernels == len(kernel_rows)
        assert network_row.n_layers == len(layer_rows)
        assert network_row.e2e_us == result.e2e_us
        assert network_row.kernel_time_us == pytest.approx(
            sum(r.duration_us for r in kernel_rows))

    def test_layer_rows_sum_kernel_durations(self, result):
        kernel_rows, layer_rows, _ = rows_from_execution(result)
        by_layer = {}
        for row in kernel_rows:
            by_layer.setdefault(row.layer_name, 0.0)
            by_layer[row.layer_name] += row.duration_us
        for layer in layer_rows:
            assert layer.duration_us == pytest.approx(
                by_layer.get(layer.layer_name, 0.0))

    def test_rows_carry_signatures(self, result):
        kernel_rows, layer_rows, _ = rows_from_execution(result)
        assert all(row.signature for row in kernel_rows)
        assert all(row.signature for row in layer_rows)

    def test_total_flops_matches_structure(self, result):
        _, _, network_row = rows_from_execution(result)
        assert network_row.total_flops == resnet18().total_flops(8)


class TestBuildDataset:
    def test_small_build_covers_grid(self, small_dataset, small_roster):
        assert small_dataset.gpu_names() == ["A100", "TITAN RTX"]
        assert small_dataset.batch_sizes() == [64, 512]
        assert (set(small_dataset.network_names())
                == {net.name for net in small_roster})

    def test_kernel_row_count_substantial(self, small_dataset):
        # the paper records ~240k kernel executions per GPU at full scale
        assert len(small_dataset) > 5000

    def test_oom_points_are_cleaned(self):
        tiny = gpu("Quadro P620")   # 2 GB
        data = build_dataset([vgg16()], [tiny], batch_sizes=[512])
        assert data.network_rows == []   # VGG-16 at BS 512 cannot fit

    def test_memory_estimate_scales_with_batch(self):
        assert (_estimated_memory_gb(vgg16(), 512)
                > 10 * _estimated_memory_gb(vgg16(), 8))


class TestFiltering:
    def test_for_gpu(self, small_dataset):
        subset = small_dataset.for_gpu("A100")
        assert subset.gpu_names() == ["A100"]
        assert all(r.gpu == "A100" for r in subset.kernel_rows)

    def test_at_batch(self, small_dataset):
        subset = small_dataset.at_batch(64)
        assert subset.batch_sizes() == [64]

    def test_filter_by_networks(self, small_dataset):
        subset = small_dataset.filter(networks={"resnet18"})
        assert subset.network_names() == ["resnet18"]

    def test_combined_filter(self, small_dataset):
        subset = small_dataset.filter(gpu="A100", batch_size=512,
                                      networks={"resnet50"})
        assert len(subset.network_rows) == 1

    def test_merged_with(self, small_dataset):
        a = small_dataset.for_gpu("A100")
        b = small_dataset.for_gpu("TITAN RTX")
        merged = a.merged_with(b)
        assert len(merged) == len(small_dataset)

    def test_indices(self, small_dataset):
        by_name = small_dataset.kernels_by_name()
        assert sum(len(rows) for rows in by_name.values()) == len(
            small_dataset.kernel_rows)
        by_kind = small_dataset.layers_by_kind()
        assert "CONV" in by_kind
