"""Unit tests for dataset row schemas."""

import pytest

from repro.dataset.records import (
    KernelRow,
    LayerRow,
    NetworkRow,
    field_names,
)


def make_kernel_row(**overrides):
    defaults = dict(network="n", family="f", gpu="A100", batch_size=8,
                    mode="inference", layer_name="l", layer_kind="CONV",
                    signature="CONV|x", kernel_name="k", flops=100.0,
                    input_nchw=10.0, output_nchw=20.0, duration_us=5.0)
    defaults.update(overrides)
    return KernelRow(**defaults)


class TestKernelRow:
    def test_feature_lookup(self):
        row = make_kernel_row()
        assert row.feature("flops") == 100.0
        assert row.feature("input_nchw") == 10.0
        assert row.feature("output_nchw") == 20.0

    def test_unknown_feature_rejected(self):
        with pytest.raises(KeyError):
            make_kernel_row().feature("duration_us")
        with pytest.raises(KeyError):
            make_kernel_row().feature("bandwidth")

    def test_rows_are_immutable(self):
        row = make_kernel_row()
        with pytest.raises(Exception):
            row.flops = 1.0


class TestNetworkRow:
    def make(self):
        return NetworkRow(network="n", family="f", gpu="A100",
                          batch_size=8, mode="inference",
                          total_flops=3e9, e2e_us=12_000.0,
                          kernel_time_us=13_000.0, n_layers=10,
                          n_kernels=20)

    def test_unit_conversions(self):
        row = self.make()
        assert row.gflops == pytest.approx(3.0)
        assert row.e2e_ms == pytest.approx(12.0)


class TestFieldNames:
    def test_headers_match_dataclass_order(self):
        names = field_names(KernelRow)
        assert names[0] == "network"
        assert "signature" in names
        assert names[-1] == "duration_us"

    def test_every_row_type_has_mode_column(self):
        for row_type in (KernelRow, LayerRow, NetworkRow):
            assert "mode" in field_names(row_type)
