"""Registry generations and read-only snapshots (the worker view)."""

import shutil

import pytest

from repro.service.registry import ModelRegistry, RegistrySnapshot


@pytest.fixture()
def own_models_dir(models_dir, tmp_path):
    """A private mutable copy of the trained model directory."""
    directory = tmp_path / "models"
    shutil.copytree(models_dir, directory)
    return directory


class TestGeneration:
    def test_initial_scan_counts_one_generation_per_model(
            self, own_models_dir):
        registry = ModelRegistry(own_models_dir)
        assert registry.generation == len(registry)

    def test_reload_bumps_the_generation(self, own_models_dir):
        registry = ModelRegistry(own_models_dir)
        before = registry.generation
        path = own_models_dir / "kw-a100.json"
        # rewrite with different bytes so (mtime_ns, size) must move
        path.write_text(path.read_text() + " ")
        registry.get("kw-a100")
        assert registry.generation == before + 1

    def test_removal_bumps_the_generation(self, own_models_dir):
        registry = ModelRegistry(own_models_dir)
        before = registry.generation
        (own_models_dir / "kw-a100.json").unlink()
        with pytest.raises(KeyError):
            registry.get("kw-a100")
        assert registry.generation == before + 1

    def test_untouched_access_keeps_the_generation(self, own_models_dir):
        registry = ModelRegistry(own_models_dir)
        before = registry.generation
        registry.get("kw-a100")
        registry.scan()
        assert registry.generation == before


class TestSnapshot:
    def test_mirrors_the_registry_surface(self, own_models_dir):
        registry = ModelRegistry(own_models_dir)
        snapshot = registry.snapshot()
        assert isinstance(snapshot, RegistrySnapshot)
        assert snapshot.generation == registry.generation
        assert snapshot.names() == registry.names()
        assert len(snapshot) == len(registry)
        assert "kw-a100" in snapshot
        assert "nope" not in snapshot
        assert snapshot.describe() == registry.describe()
        assert snapshot.reload_count() == registry.reload_count()
        assert snapshot.errors == registry.errors
        assert snapshot.first_of_kind("igkw").name == "igkw"
        assert snapshot.first_of_kind("missing-kind") is None

    def test_get_serves_the_same_entry(self, own_models_dir):
        registry = ModelRegistry(own_models_dir)
        snapshot = registry.snapshot()
        assert snapshot.get("kw-a100") is registry.get("kw-a100")

    def test_unknown_model_message_matches_the_registry(
            self, own_models_dir):
        registry = ModelRegistry(own_models_dir)
        snapshot = registry.snapshot()
        with pytest.raises(KeyError) as from_registry:
            registry.get("nope")
        with pytest.raises(KeyError) as from_snapshot:
            snapshot.get("nope")
        # workers answer 404s with exactly the in-process error text
        assert str(from_snapshot.value) == str(from_registry.value)

    def test_frozen_against_later_mutations(self, own_models_dir):
        registry = ModelRegistry(own_models_dir)
        snapshot = registry.snapshot()
        generation = snapshot.generation
        (own_models_dir / "kw-a100.json").unlink()
        registry.scan()
        # the live registry moved on; the snapshot did not
        assert registry.generation > generation
        assert snapshot.generation == generation
        assert "kw-a100" in snapshot
        assert "kw-a100" not in registry
        assert snapshot.get("kw-a100").name == "kw-a100"
