"""AOT plan bundles in the serving path: preload, hit, degrade, reload."""

from __future__ import annotations

import json

import pytest

from repro import core
from repro.core.planopt import bundle_path_for, compile_store
from repro.gpu import gpu
from repro.service import ModelRegistry, PredictionService
from repro.service.core import ServiceError

#: (network, batch) coverage the bundles are compiled with.
COVERED = [("resnet18", 8), ("mobilenet_v2", 8)]


@pytest.fixture(scope="module")
def aot_dir(small_dataset, tmp_path_factory):
    """Models WITH compiled plan bundles (unlike the shared models_dir)."""
    directory = tmp_path_factory.mktemp("aot-models")
    core.save_model(core.train_model(small_dataset, "kw", gpu="A100"),
                    directory / "kw.json")
    core.save_model(
        core.train_inter_gpu_model(small_dataset,
                                   [gpu("A100"), gpu("TITAN RTX")]),
        directory / "igkw.json")
    report = compile_store(
        directory, network_names=sorted({n for n, _ in COVERED}),
        batch_sizes=sorted({b for _, b in COVERED}), verify=True)
    assert report.ok
    return directory


@pytest.fixture()
def service(aot_dir):
    return PredictionService(ModelRegistry(aot_dir))


class TestRegistryPreload:
    def test_entries_carry_their_bundle_plans(self, aot_dir):
        registry = ModelRegistry(aot_dir)
        for name in ("kw", "igkw"):
            entry = registry.get(name)
            assert set(entry.plans) == set(COVERED)
            assert entry.describe()["aot_plans"] == len(COVERED)

    def test_missing_bundle_means_empty_plans(self, small_dataset,
                                              tmp_path):
        core.save_model(core.train_model(small_dataset, "kw", gpu="A100"),
                        tmp_path / "kw.json")
        entry = ModelRegistry(tmp_path).get("kw")
        assert entry.plans == {}
        assert entry.describe()["aot_plans"] == 0


class TestServingFromTheStore:
    def test_cold_predict_hits_the_bundle(self, service):
        response = service.predict({"model": "kw", "network": "resnet18",
                                    "batch_size": 8})
        assert response["cached"] is False
        # no plan was ever compiled in this process, yet the plan path
        # reports a hit: the bundle answered
        assert response["plan_cached"] is True
        assert service.metrics.counter("aot_plan_hits_total") == 1

    def test_aot_served_value_matches_lazy_compilation(self, aot_dir,
                                                       tmp_path):
        body = {"model": "igkw", "network": "resnet18",
                "batch_size": 8, "gpu": "V100"}
        aot = PredictionService(ModelRegistry(aot_dir)).predict(body)
        # same model file, no bundle: the plan is compiled from scratch
        (tmp_path / "igkw.json").write_bytes(
            (aot_dir / "igkw.json").read_bytes())
        lazy = PredictionService(ModelRegistry(tmp_path)).predict(body)
        assert lazy["plan_cached"] is False      # really compiled fresh
        assert aot["predicted_us"] == lazy["predicted_us"]

    def test_uncovered_combination_compiles_lazily(self, service):
        response = service.predict({"model": "kw", "network": "resnet18",
                                    "batch_size": 16})   # batch not in bundle
        assert response["plan_cached"] is False
        assert service.metrics.counter("aot_plan_hits_total") == 0

    def test_unknown_network_still_404s(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.predict({"model": "kw", "network": "not_a_network",
                             "batch_size": 8})
        assert excinfo.value.status == 404

    def test_second_request_is_a_result_cache_hit(self, service):
        body = {"model": "kw", "network": "mobilenet_v2", "batch_size": 8}
        first = service.predict(body)
        second = service.predict(body)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["predicted_us"] == first["predicted_us"]
        # the bundle was consulted exactly once
        assert service.metrics.counter("aot_plan_hits_total") == 1


class TestStaleBundles:
    def test_rewritten_model_drops_its_stale_bundle(self, small_dataset,
                                                    tmp_path):
        path = tmp_path / "kw.json"
        core.save_model(core.train_model(small_dataset, "kw", gpu="A100"),
                        path)
        report = compile_store(tmp_path, network_names=["resnet18"],
                               batch_sizes=[8])
        assert report.ok
        registry = ModelRegistry(tmp_path)
        assert registry.get("kw").plans != {}
        # retrain in place: the registry reload rebuilds the entry, and
        # the bundle (compiled against the old bytes) must not survive
        core.save_model(
            core.train_model(small_dataset, "kw", gpu="TITAN RTX"), path)
        entry = registry.get("kw")
        assert entry.reloads == 1
        assert entry.plans == {}
        # the model itself still serves, just without AOT plans
        response = PredictionService(registry).predict(
            {"model": "kw", "network": "resnet18", "batch_size": 8})
        assert response["plan_cached"] is False

    def test_corrupt_bundle_never_takes_the_model_down(self, small_dataset,
                                                       tmp_path):
        path = tmp_path / "kw.json"
        core.save_model(core.train_model(small_dataset, "kw", gpu="A100"),
                        path)
        bundle_path = bundle_path_for(path)
        bundle_path.parent.mkdir()
        bundle_path.write_text("{ not json")
        registry = ModelRegistry(tmp_path)
        assert registry.errors == {}
        assert registry.get("kw").plans == {}

    def test_bundle_edits_do_not_trigger_model_reload(self, aot_dir):
        # bundles live under plans/, outside the registry's *.json glob
        registry = ModelRegistry(aot_dir)
        before = registry.get("kw").stamp
        bundle_path = bundle_path_for(aot_dir / "kw.json")
        document = json.loads(bundle_path.read_text())
        bundle_path.write_text(json.dumps(document))
        entry = registry.get("kw")
        assert entry.stamp == before
        assert entry.reloads == 0
