"""Tests for the compiled-plan cache inside PredictionService.

The plan cache is keyed by (model, network, batch, model version) —
GPU and bandwidth are deliberately absent, because igkw plans are
retargetable: one compile serves every target. These tests pin that
key shape, the plan_cached response field, mtime invalidation, and the
plan-cache metrics surfaces.
"""

from __future__ import annotations

import os

import pytest

from repro.service import PredictionCache, PredictionService


@pytest.fixture()
def service(registry):
    return PredictionService(registry, cache=PredictionCache(256),
                             plan_cache=PredictionCache(256))


def _igkw(bandwidth=None, network="resnet18", batch_size=64):
    payload = {"model": "igkw", "network": network,
               "batch_size": batch_size, "gpu": "V100"}
    if bandwidth is not None:
        payload["bandwidth"] = bandwidth
    return payload


class TestPlanReuse:
    def test_first_request_compiles_then_hits(self, service):
        first = service.predict(_igkw())
        assert first["cached"] is False
        assert first["plan_cached"] is False
        # different bandwidth: result cache misses, plan cache hits
        second = service.predict(_igkw(bandwidth=600.0))
        assert second["cached"] is False
        assert second["plan_cached"] is True
        assert second["predicted_us"] != first["predicted_us"]
        stats = service.plans.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["size"] == 1

    def test_bandwidth_sweep_compiles_once(self, service):
        for bandwidth in (300.0, 500.0, 700.0, 900.0, 1100.0):
            service.predict(_igkw(bandwidth=bandwidth))
        assert service.plans.stats() == {
            "hits": 4, "misses": 1, "size": 1, "capacity": 256,
            "hit_ratio": pytest.approx(0.8)}

    def test_result_hit_skips_the_plan_cache(self, service):
        service.predict(_igkw())
        before = service.plans.stats()
        replay = service.predict(_igkw())
        assert replay["cached"] is True
        assert replay["plan_cached"] is True
        # a result hit answers without touching plans at all
        assert service.plans.stats() == before

    def test_single_gpu_models_share_plans_too(self, service):
        first = service.predict({"model": "kw-a100",
                                 "network": "resnet50",
                                 "batch_size": 64})
        service.cache = PredictionCache(256)   # force a result miss
        second = service.predict({"model": "kw-a100",
                                  "network": "resnet50",
                                  "batch_size": 64})
        assert first["plan_cached"] is False
        assert second["plan_cached"] is True
        assert second["predicted_us"] == first["predicted_us"]


class TestPlanKey:
    def test_batch_size_is_part_of_the_key(self, service):
        service.predict(_igkw(batch_size=64))
        other = service.predict(_igkw(batch_size=128))
        assert other["plan_cached"] is False
        assert service.plans.stats()["size"] == 2

    def test_network_is_part_of_the_key(self, service):
        service.predict(_igkw(network="resnet18"))
        other = service.predict(_igkw(network="resnet50"))
        assert other["plan_cached"] is False

    def test_model_reload_invalidates_plans(self, service, models_dir):
        service.predict(_igkw())
        path = models_dir / "igkw.json"
        stat = path.stat()
        os.utime(path, (stat.st_atime, stat.st_mtime + 1))
        # new mtime -> registry hot-reloads -> fresh plan key
        recompiled = service.predict(_igkw())
        assert recompiled["cached"] is False
        assert recompiled["plan_cached"] is False
        assert service.plans.stats()["size"] == 2


class TestPlanMetrics:
    def test_snapshot_reports_plan_cache(self, service):
        service.predict(_igkw())
        service.predict(_igkw(bandwidth=900.0))
        snapshot = service.metrics_snapshot()
        assert snapshot["plan_cache"] == service.plans.stats()
        assert snapshot["plan_cache"]["hits"] == 1

    def test_prometheus_text_exposes_plan_gauges(self, service):
        service.predict(_igkw())
        text = service.metrics_text()
        assert "repro_plan_cache_misses 1" in text
        assert "repro_plan_cache_hits 0" in text
        assert "repro_plan_cache_size 1" in text
        assert "repro_plan_cache_hit_ratio" in text
