"""Worker pool: fork, route, crash-respawn, broadcast, shutdown."""

import os
import signal
import time

import pytest

from repro.service import protocol
from repro.service.metrics import MetricsRegistry
from repro.service.pool import WorkerOptions, WorkerPool
from repro.service.sharding import shard_key


def _wait_until(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture()
def pool(models_dir):
    pool = WorkerPool(models_dir, workers=2,
                      metrics=MetricsRegistry(),
                      monitor_interval_s=0.05)
    pool.start()
    assert _wait_until(lambda: pool.alive_count() == 2)
    try:
        yield pool
    finally:
        pool.shutdown()


class TestOptions:
    def test_to_dict_round_trips(self):
        options = WorkerOptions(cache_size=16, snapshot_interval_s=0.5)
        assert WorkerOptions(**options.to_dict()) == options

    def test_pool_needs_a_worker(self, models_dir):
        with pytest.raises(ValueError, match="at least one worker"):
            WorkerPool(models_dir, workers=0)


class TestDispatch:
    def test_workers_are_distinct_processes(self, pool):
        answers = pool.broadcast(protocol.OP_PING)
        assert [status for _, status, _ in answers] == [200, 200]
        pids = {body["pid"] for _, _, body in answers}
        assert len(pids) == 2
        assert os.getpid() not in pids

    def test_predict_through_a_routed_worker(self, pool):
        payload = {"model": "kw-a100", "network": "resnet50",
                   "batch_size": 64}
        handle = pool.route(payload["model"], payload["network"])
        status, body = handle.submit(
            protocol.OP_PREDICT, payload, timeout_s=30).result(30)
        assert status == 200
        assert body["predicted_us"] > 0
        assert body["tier"] == "kw"

    def test_worker_errors_come_back_with_their_status(self, pool):
        handle = pool.route("nope", "resnet50")
        status, body = handle.submit(
            protocol.OP_PREDICT,
            {"model": "nope", "network": "resnet50", "batch_size": 64},
            timeout_s=30).result(30)
        assert status == 404
        assert "unknown model" in body["error"]

    def test_unknown_op_is_a_400(self, pool):
        status, body = pool.handles[0].submit(
            "frobnicate", {}, timeout_s=30).result(30)
        assert status == 400
        assert "unknown worker op" in body["error"]

    def test_broadcast_metrics_reaches_every_worker(self, pool):
        answers = pool.broadcast(protocol.OP_METRICS)
        assert len(answers) == 2
        for _, status, body in answers:
            assert status == 200
            assert body["registry"]["models"] == 4


class TestRouting:
    def test_affinity_is_stable(self, pool):
        slots = {pool.route("kw-a100", "resnet50").slot
                 for _ in range(10)}
        assert len(slots) == 1

    def test_keys_spread_across_workers(self, pool):
        slots = {pool.route("kw-a100", f"network-{index}").slot
                 for index in range(64)}
        assert slots == {0, 1}

    def test_route_matches_the_ring_when_all_alive(self, pool):
        for network in ("resnet50", "vgg16", "mobilenet_v2"):
            expected = pool.ring.lookup(shard_key("kw-a100", network))
            assert pool.route("kw-a100", network).slot == expected


class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_counted(self, pool):
        victim = pool.route("kw-a100", "resnet50")
        doomed_pid = victim.pid()
        os.kill(doomed_pid, signal.SIGKILL)
        assert _wait_until(lambda: victim.restarts() >= 1)
        assert _wait_until(lambda: pool.alive_count() == 2)
        assert victim.pid() != doomed_pid
        # the shard serves again from the fresh process
        status, body = victim.submit(
            protocol.OP_PREDICT,
            {"model": "kw-a100", "network": "resnet50",
             "batch_size": 64}, timeout_s=30).result(30)
        assert status == 200
        assert body["predicted_us"] > 0
        assert pool.restarts_total() >= 1
        assert pool.metrics.counter("worker_restarts_total") >= 1
        assert pool.metrics.counter(
            f"worker_{victim.slot}_restarts_total") >= 1

    def test_route_skips_a_dead_slot(self, pool):
        owner_slot = pool.ring.lookup(shard_key("kw-a100", "resnet50"))
        victim = pool.handles[owner_slot]
        os.kill(victim.pid(), signal.SIGKILL)
        assert _wait_until(lambda: not victim.alive() or
                           victim.restarts() >= 1)
        # whichever handle route returns, it must be a live one (either
        # the ring successor while the owner is down, or the respawned
        # owner) — requests never target a known-dead process
        handle = pool.route("kw-a100", "resnet50")
        assert handle.alive()
        assert _wait_until(lambda: pool.alive_count() == 2)


class TestShutdown:
    def test_shutdown_leaves_no_processes(self, models_dir):
        pool = WorkerPool(models_dir, workers=2, monitor_interval_s=0.05)
        pool.start()
        assert _wait_until(lambda: pool.alive_count() == 2)
        pids = [handle.pid() for handle in pool.handles]
        pool.shutdown()
        assert pool.alive_count() == 0
        for pid in pids:
            # the processes are gone (reaped by multiprocessing.join)
            with pytest.raises(OSError):
                os.kill(pid, 0)

    def test_queue_depths_report_per_slot(self, pool):
        assert pool.queue_depths() == {0: 0, 1: 0}
        assert pool.restarts() == {0: 0, 1: 0}
