"""Consistent-hash ring: determinism, balance, minimal movement."""

import pytest

from repro.service.sharding import DEFAULT_REPLICAS, HashRing, shard_key


def _keys(count=400):
    return [shard_key(f"model-{index % 5}", f"network-{index}")
            for index in range(count)]


class TestShardKey:
    def test_separator_prevents_collisions(self):
        # ("ab", "c") and ("a", "bc") must not share a shard key
        assert shard_key("ab", "c") != shard_key("a", "bc")

    def test_batch_size_not_part_of_the_key(self):
        # affinity is per (model, network): every batch size of a pair
        # lands on the same worker and shares its plan cache
        assert shard_key("m", "n") == shard_key("m", "n")


class TestDeterminism:
    def test_lookup_stable_across_instances(self):
        first = HashRing(range(4))
        second = HashRing(range(4))
        for key in _keys():
            assert first.lookup(key) == second.lookup(key)

    def test_lookup_independent_of_insertion_order(self):
        forward = HashRing([0, 1, 2, 3])
        backward = HashRing([3, 2, 1, 0])
        for key in _keys():
            assert forward.lookup(key) == backward.lookup(key)


class TestBalance:
    def test_every_slot_owns_a_fair_share(self):
        ring = HashRing(range(4))
        counts = {slot: 0 for slot in range(4)}
        for key in _keys(2000):
            counts[ring.lookup(key)] += 1
        for slot, count in counts.items():
            # 2000 keys over 4 slots: each should own a real share, not
            # a sliver — virtual replicas keep the arcs comparable
            assert count > 200, (slot, counts)


class TestMinimalMovement:
    def test_removing_a_slot_only_moves_its_keys(self):
        full = HashRing(range(4))
        reduced = HashRing(range(4))
        reduced.remove(2)
        for key in _keys(1000):
            owner = full.lookup(key)
            if owner != 2:
                assert reduced.lookup(key) == owner
            else:
                assert reduced.lookup(key) != 2

    def test_rejoin_restores_the_original_owner(self):
        ring = HashRing(range(4))
        before = {key: ring.lookup(key) for key in _keys()}
        ring.remove(1)
        ring.add(1)
        assert {key: ring.lookup(key) for key in before} == before

    def test_successors_start_at_the_owner(self):
        ring = HashRing(range(4))
        for key in _keys(50):
            chain = list(ring.successors(key))
            assert chain[0] == ring.lookup(key)
            assert sorted(chain) == [0, 1, 2, 3]   # all distinct slots

    def test_successor_is_the_failover_owner(self):
        # the next live slot in successor order is exactly who inherits
        # the key when the owner is removed from the ring
        ring = HashRing(range(4))
        for key in _keys(100):
            owner, fallback = list(ring.successors(key))[:2]
            reduced = HashRing(range(4))
            reduced.remove(owner)
            assert reduced.lookup(key) == fallback


class TestEdgeCases:
    def test_empty_ring_lookup_raises(self):
        with pytest.raises(LookupError, match="no slots"):
            HashRing().lookup("key")

    def test_empty_ring_successors_is_empty(self):
        assert list(HashRing().successors("key")) == []

    def test_single_slot_owns_everything(self):
        ring = HashRing([7])
        assert all(ring.lookup(key) == 7 for key in _keys(50))

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing([0, 1])
        ring.add(0)
        assert len(ring) == 2
        ring.remove(5)
        assert len(ring) == 2
        assert 0 in ring and 5 not in ring
        assert ring.slots() == [0, 1]

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)

    def test_default_replicas_is_plural(self):
        assert DEFAULT_REPLICAS >= 8
