"""Tests for the bounded LRU prediction cache."""

import threading

import pytest

from repro.service import PredictionCache, cache_key


class TestCacheKey:
    def test_distinguishes_every_field(self):
        base = cache_key("kw", "resnet50", 64)
        assert cache_key("kw", "resnet50", 64) == base
        assert cache_key("lw", "resnet50", 64) != base
        assert cache_key("kw", "resnet18", 64) != base
        assert cache_key("kw", "resnet50", 128) != base
        assert cache_key("kw", "resnet50", 64, gpu="V100") != base
        assert cache_key("kw", "resnet50", 64, bandwidth=900.0) != base

    def test_version_invalidates_on_reload(self):
        before = cache_key("kw", "resnet50", 64, version=1.0)
        after = cache_key("kw", "resnet50", 64, version=2.0)
        assert before != after


class TestPredictionCache:
    def test_round_trip_and_counters(self):
        cache = PredictionCache(capacity=4)
        key = cache_key("kw", "resnet50", 64)
        assert cache.get(key) is None
        cache.put(key, {"predicted_us": 1.0})
        assert cache.get(key) == {"predicted_us": 1.0}
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_hit_ratio_empty(self):
        assert PredictionCache().hit_ratio == 0.0

    def test_evicts_least_recently_used(self):
        cache = PredictionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refresh "a": now "b" is oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_put_overwrites_in_place(self):
        cache = PredictionCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PredictionCache(capacity=0)

    def test_clear(self):
        cache = PredictionCache()
        cache.put("a", 1)
        cache.clear()
        assert "a" not in cache
        assert len(cache) == 0

    def test_stats_fields(self):
        cache = PredictionCache(capacity=8)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 1, "hit_ratio": 0.5,
                         "size": 1, "capacity": 8}

    def test_thread_safety_bounded(self):
        cache = PredictionCache(capacity=32)

        def hammer(worker: int) -> None:
            for i in range(300):
                cache.put((worker, i % 40), i)
                cache.get((worker, (i + 7) % 40))

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 32
        assert cache.hits + cache.misses == 8 * 300
