"""Cross-process metrics: gauges, exact histogram merge, aggregation."""

from repro.service.metrics import (
    Histogram,
    MetricsRegistry,
    aggregate_snapshots,
    merge_histogram_snapshots,
)


class TestGauges:
    def test_absent_until_set_for_snapshot_compatibility(self):
        registry = MetricsRegistry()
        # the single-process server sets no gauges; its snapshot shape
        # (and therefore its /metrics bytes) must stay unchanged
        assert "gauges" not in registry.snapshot()

    def test_set_and_read_back(self):
        registry = MetricsRegistry()
        registry.set_gauge("worker_0_queue_depth", 3)
        registry.set_gauge("worker_0_queue_depth", 5)
        assert registry.gauge("worker_0_queue_depth") == 5
        assert registry.gauge("missing") is None
        assert registry.snapshot()["gauges"] == {
            "worker_0_queue_depth": 5}

    def test_rendered_in_text_exposition(self):
        registry = MetricsRegistry()
        registry.set_gauge("workers_alive", 4)
        assert "repro_workers_alive 4" in registry.render_text()


class TestHistogramMerge:
    def test_merge_equals_one_big_histogram(self):
        # the gold standard: merging per-process snapshots must give
        # byte-identical results to having observed everything in one
        # histogram — that is what "exact" means
        values = [0.3, 0.9, 3.0, 7.0, 40.0, 90.0, 900.0, 5000.0]
        parts = [Histogram(), Histogram(), Histogram()]
        reference = Histogram()
        for index, value in enumerate(values):
            parts[index % 3].observe(value)
            reference.observe(value)
        merged = merge_histogram_snapshots(
            [part.snapshot() for part in parts])
        assert merged == reference.snapshot()

    def test_percentiles_are_rederived_not_averaged(self):
        # one process saw only fast requests, the other only slow ones;
        # the averaged p99s would report ~(1 + 1000)/2 ms, nowhere near
        # the true merged tail
        fast, slow = Histogram(), Histogram()
        for _ in range(99):
            fast.observe(0.4)
        slow.observe(900.0)
        merged = merge_histogram_snapshots(
            [fast.snapshot(), slow.snapshot()])
        reference = Histogram()
        for _ in range(99):
            reference.observe(0.4)
        reference.observe(900.0)
        assert merged["p99"] == reference.percentile(99)
        naive_average_p99 = (fast.percentile(99) + slow.percentile(99)) / 2
        assert merged["p99"] != naive_average_p99

    def test_overflow_and_sum_accumulate(self):
        left, right = Histogram(), Histogram()
        left.observe(10_000.0)                          # overflow bucket
        right.observe(10_000.0)
        right.observe(1.0)
        merged = merge_histogram_snapshots(
            [left.snapshot(), right.snapshot()])
        assert merged["overflow"] == 2
        assert merged["count"] == 3
        assert merged["sum"] == round(20_001.0, 4)

    def test_empty_input_is_an_empty_histogram(self):
        assert merge_histogram_snapshots([]) == Histogram().snapshot()


class TestAggregateSnapshots:
    def _worker_snapshot(self, requests, hits, misses):
        registry = MetricsRegistry()
        registry.increment("requests_predict_total", by=requests)
        registry.observe("request_predict_ms", 1.0)
        snapshot = registry.snapshot()
        snapshot["cache"] = {"hits": hits, "misses": misses,
                             "size": hits + misses,
                             "capacity": 1024,
                             "hit_ratio": 0.0}
        snapshot["registry"] = {"models": 4, "reloads": 1}
        return snapshot

    def test_counters_and_caches_sum(self):
        merged = aggregate_snapshots([
            self._worker_snapshot(10, hits=4, misses=6),
            self._worker_snapshot(30, hits=1, misses=9),
        ])
        assert merged["counters"]["requests_predict_total"] == 40
        assert merged["cache"]["hits"] == 5
        assert merged["cache"]["misses"] == 15
        assert merged["cache"]["hit_ratio"] == 0.25
        assert merged["cache"]["capacity"] == 2048
        assert merged["histograms"]["request_predict_ms"]["count"] == 2

    def test_registry_models_max_reloads_sum(self):
        merged = aggregate_snapshots([
            self._worker_snapshot(1, 0, 1),
            self._worker_snapshot(1, 0, 1),
        ])
        # every worker hosts the same directory: 4 models, not 8
        assert merged["registry"] == {"models": 4, "reloads": 2}

    def test_gauges_keep_latest_per_name(self):
        front = MetricsRegistry()
        front.set_gauge("worker_0_queue_depth", 2)
        merged = aggregate_snapshots(
            [front.snapshot(), {"counters": {}, "histograms": {}}])
        assert merged["gauges"] == {"worker_0_queue_depth": 2}

    def test_no_gauges_key_when_none_present(self):
        merged = aggregate_snapshots(
            [{"counters": {}, "histograms": {}}])
        assert "gauges" not in merged
