"""/predict_batch: per-item errors, cache accounting, vectorised igkw."""

import json
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro.service import ModelRegistry, PredictionCache, PredictionService
from repro.service.server import BATCH_CAP, ServiceError


def _get(url: str):
    with urlopen(url, timeout=10) as response:
        body = response.read()
        if response.headers.get_content_type() == "application/json":
            return response.status, json.loads(body)
        return response.status, body.decode()


def _post(base_url: str, path: str, payload: dict):
    request = Request(f"{base_url}{path}",
                      data=json.dumps(payload).encode(),
                      headers={"Content-Type": "application/json"},
                      method="POST")
    try:
        with urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _item(model="kw-a100", network="resnet50", batch_size=64, **extra):
    return dict({"model": model, "network": network,
                 "batch_size": batch_size}, **extra)


class TestMixedBatch:
    def test_64_item_mixed_batch_over_http(self, live_server):
        """The acceptance scenario: a 64-item batch mixing every hosted
        model kind with malformed items answers 200, slots the errors
        per item, and the batch metrics land in /metrics."""
        url, service = live_server
        bad = [
            (_item(model="nope"), 404),                    # unknown model
            (_item(network="resnet9000"), 404),            # unknown network
            (_item(batch_size=0), 400),                    # bad batch size
            ({"network": "resnet50", "batch_size": 64}, 400),  # no model
            (_item(model="igkw", network="resnet18"), 400),    # no gpu
            (_item(model="igkw", network="resnet18",
                   gpu="TPUv9"), 404),                     # unknown gpu
            ("not a dict", 400),
        ]
        good = (
            [_item(network=n) for n in
             ("resnet50", "vgg11", "alexnet")] +
            [_item(model="e2e-a100", network="resnet18"),
             _item(model="lw-a100", network="resnet18")] +
            [_item(model="igkw", network="resnet18", gpu=g)
             for g in ("V100", "A100", "TITAN RTX")] +
            [_item(model="igkw", network="resnet18", gpu="V100",
                   bandwidth=float(b))
             for b in (300, 500, 700, 900, 1100)]
        )
        items = []
        for index in range(64 - len(bad)):
            items.append(good[index % len(good)])
        bad_positions = {}
        for offset, (payload, status) in enumerate(bad):
            position = offset * 9 + 3        # scatter through the batch
            items.insert(position, payload)
            bad_positions[position] = status
        assert len(items) == 64

        status, body = _post(url, "/predict_batch", {"items": items})
        assert status == 200
        assert body["count"] == 64
        assert body["errors"] == len(bad)
        assert len(body["results"]) == 64
        for position, result in enumerate(body["results"]):
            if position in bad_positions:
                assert result["status"] == bad_positions[position]
                assert result["error"]
            else:
                assert "status" not in result
                assert result["predicted_us"] > 0
                assert result["model"] == items[position]["model"]
                assert result["network"] == items[position]["network"]

        _, metrics = _get(f"{url}/metrics")
        counters = metrics["counters"]
        assert counters["batch_items_total"] >= 64
        assert counters["batch_item_errors_total"] >= len(bad)
        assert counters["batch_vectorized_items_total"] >= 1
        assert metrics["histograms"]["batch_size"]["count"] >= 1
        assert counters["requests_predict_batch_total"] >= 1
        assert "errors_predict_batch_total" not in counters

        _, text = _get(f"{url}/metrics?format=text")
        assert "repro_batch_items_total" in text
        assert "repro_batch_item_errors_total" in text
        assert "repro_batch_size_count" in text

    def test_per_item_cache_hits(self, live_server):
        url, service = live_server
        warm = _item(network="squeezenet1_1")
        cold = _item(network="googlenet")
        before = service.metrics.counter("batch_cache_hits_total")
        status, first = _post(url, "/predict", warm)
        assert status == 200 and first["cached"] is False

        status, body = _post(url, "/predict_batch",
                             {"items": [warm, cold]})
        assert status == 200 and body["errors"] == 0
        warmed, colded = body["results"]
        assert warmed["cached"] is True
        assert warmed["predicted_us"] == first["predicted_us"]
        assert colded["cached"] is False
        after = service.metrics.counter("batch_cache_hits_total")
        assert after == before + 1

    def test_in_batch_duplicates_hit_like_sequential_requests(
            self, live_server):
        url, service = live_server
        item = _item(network="mobilenet_v2")
        before = service.metrics.counter("batch_cache_hits_total")
        status, body = _post(url, "/predict_batch",
                             {"items": [item, dict(item), dict(item)]})
        assert status == 200 and body["errors"] == 0
        first, *rest = body["results"]
        assert first["cached"] is False
        for result in rest:
            assert result["cached"] is True
            assert result["predicted_us"] == first["predicted_us"]
        after = service.metrics.counter("batch_cache_hits_total")
        assert after == before + 2


class TestBatchRejections:
    @pytest.mark.parametrize("payload,fragment", [
        ({}, "'items'"),
        ({"items": "resnet50"}, "'items'"),
        ({"items": {}}, "'items'"),
        ({"items": []}, "must not be empty"),
    ])
    def test_bad_envelope_400(self, live_server, payload, fragment):
        url, _ = live_server
        status, body = _post(url, "/predict_batch", payload)
        assert status == 400
        assert fragment in body["error"]

    def test_oversized_batch_413(self, models_dir):
        service = PredictionService(ModelRegistry(models_dir),
                                    batch_cap=4)
        items = [_item() for _ in range(5)]
        with pytest.raises(ServiceError) as excinfo:
            service.predict_batch({"items": items})
        assert excinfo.value.status == 413
        assert "cap of 4" in excinfo.value.message

    def test_default_cap_is_module_constant(self, models_dir):
        service = PredictionService(ModelRegistry(models_dir))
        assert service.batch_cap == BATCH_CAP

    def test_batch_cap_must_be_positive(self, models_dir):
        with pytest.raises(ValueError):
            PredictionService(ModelRegistry(models_dir), batch_cap=0)


class TestSequentialParity:
    def test_batch_equals_n_single_predicts(self, models_dir):
        """A fresh service serving one batch answers exactly like a
        fresh service serving the same items one /predict at a time —
        values, tiers, attempts, and cache/plan flags included."""
        items = (
            [_item(network=n) for n in ("resnet50", "vgg11")] +
            [_item(network="resnet50")] +                  # duplicate
            [_item(model="e2e-a100", network="resnet18"),
             _item(model="lw-a100", network="resnet18"),
             # transformer shapes are unknown to the CNN-trained KW
             # table, so this one answers from the LW fallback tier
             _item(network="bert_small")] +
            [_item(model="igkw", network="resnet18", gpu=g)
             for g in ("V100", "TITAN RTX")] +
            [_item(model="igkw", network="resnet18", gpu="V100",
                   bandwidth=250.0)]
        )
        sequential_service = PredictionService(
            ModelRegistry(models_dir), cache=PredictionCache(256))
        sequential = []
        for item in items:
            try:
                sequential.append(sequential_service.predict(dict(item)))
            except ServiceError as exc:
                sequential.append({"error": exc.message,
                                   "status": exc.status})

        batch_service = PredictionService(
            ModelRegistry(models_dir), cache=PredictionCache(256))
        body = batch_service.predict_batch(
            {"items": [dict(item) for item in items]})

        assert body["count"] == len(items)
        assert body["results"] == sequential
        # and the tier metrics agree item for item
        for name in ("tier_kw_total", "tier_lw_total", "tier_e2e_total",
                     "degraded_total"):
            assert (batch_service.metrics.counter(name)
                    == sequential_service.metrics.counter(name)), name

    def test_igkw_fast_path_used_and_bit_exact(self, models_dir):
        service = PredictionService(ModelRegistry(models_dir))
        items = [_item(model="igkw", network="resnet18", gpu="V100",
                       bandwidth=float(b))
                 for b in (200, 400, 600, 800, 1000, 1200, 1400)]
        body = service.predict_batch({"items": items})
        assert body["errors"] == 0
        assert (service.metrics.counter("batch_vectorized_items_total")
                == len(items))
        assert service.metrics.counter("tier_kw_total") == len(items)

        reference = PredictionService(ModelRegistry(models_dir))
        for item, result in zip(items, body["results"]):
            assert result == reference.predict(dict(item))
