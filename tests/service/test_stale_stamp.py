"""Regression: result/plan cache keys must carry the full file stamp.

A float mtime cannot key a cache safely: near-present nanosecond
timestamps are ~1.7e18, where an IEEE double's spacing is ~238 ns —
two writes 64 ns apart collapse to the *same* float seconds. The
registry's stamp ``(st_mtime_ns, st_size)`` keeps them distinct; these
tests pin the service to keying on the stamp tuple, never the float.
"""

from __future__ import annotations

import os

from repro import core, zoo
from repro.service import ModelRegistry, PredictionService
from repro.service.cache import cache_key

#: Two nanosecond timestamps that round to the SAME double of seconds.
T0_NS = 1_700_000_000_000_000_000
T1_NS = T0_NS + 64

REQUEST = {"model": "kw", "network": "resnet18", "batch_size": 8}


def test_the_collision_is_real():
    # the premise of the whole file: distinct ns, identical float seconds
    assert T0_NS != T1_NS
    assert T0_NS / 1e9 == T1_NS / 1e9


def test_float_mtime_keys_collide_but_stamp_keys_do_not():
    stamp_a, stamp_b = (T0_NS, 4096), (T1_NS, 4096)
    floated = [cache_key("kw", "resnet18", 8, version=s[0] / 1e9)
               for s in (stamp_a, stamp_b)]
    stamped = [cache_key("kw", "resnet18", 8, version=s)
               for s in (stamp_a, stamp_b)]
    assert floated[0] == floated[1]      # the bug: stale entry reachable
    assert stamped[0] != stamped[1]      # the fix: full stamp in the key


def _write_model(path, model, length, ns):
    """Persist a model padded to a fixed byte length and mtime."""
    core.save_model(model, path)
    payload = path.read_bytes()
    assert len(payload) <= length
    # trailing whitespace is valid JSON; equal sizes force the stamps
    # to differ in st_mtime_ns alone — the hardest case for the key
    path.write_bytes(payload.ljust(length, b" "))
    os.utime(path, ns=(ns, ns))


def test_rewrite_within_one_float_mtime_tick_serves_fresh(small_dataset,
                                                          tmp_path):
    model_a = core.train_model(small_dataset, "kw", gpu="A100")
    model_b = core.train_model(small_dataset, "kw", gpu="TITAN RTX")
    path = tmp_path / "kw.json"
    core.save_model(model_a, path)
    size_a = len(path.read_bytes())
    core.save_model(model_b, path)
    length = max(size_a, len(path.read_bytes())) + 1

    _write_model(path, model_a, length, T0_NS)
    registry = ModelRegistry(tmp_path)
    service = PredictionService(registry)
    stamp_a = registry.get("kw").stamp
    first = service.predict(REQUEST)

    _write_model(path, model_b, length, T1_NS)
    stamp_b = registry.get("kw").stamp
    # the rewrite is invisible to a float mtime and to the file size...
    assert stamp_a[0] / 1e9 == stamp_b[0] / 1e9
    assert stamp_a[1] == stamp_b[1]
    # ...but not to the stamp
    assert stamp_a != stamp_b

    second = service.predict(REQUEST)
    # stamp-keyed caches cannot alias the rewrite: nothing stale served
    assert second["cached"] is False
    assert second["plan_cached"] is False
    assert second["predicted_us"] != first["predicted_us"]
    expected = model_b.predict_network(zoo.build("resnet18"), 8)
    assert second["predicted_us"] == expected
