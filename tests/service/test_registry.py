"""Tests for the hot-reloading model registry."""

import os
import shutil

import pytest

from repro import zoo
from repro.core.kernelwise import KernelTablePredictor
from repro.service import ModelRegistry, ModelResolutionError, model_kind


@pytest.fixture()
def private_dir(models_dir, tmp_path):
    """A mutable copy of the shared model directory."""
    directory = tmp_path / "models"
    shutil.copytree(models_dir, directory)
    return directory


def _touch(path, offset: float = 10.0) -> None:
    """Bump a file's mtime far enough that equality checks must fail."""
    stat = path.stat()
    os.utime(path, (stat.st_atime, stat.st_mtime + offset))


class TestScan:
    def test_hosts_every_model_kind(self, registry):
        assert registry.names() == ["e2e-a100", "igkw", "kw-a100",
                                    "lw-a100"]
        assert len(registry) == 4
        kinds = {entry["name"]: entry["kind"]
                 for entry in registry.describe()}
        assert kinds == {"e2e-a100": "e2e", "lw-a100": "lw",
                         "kw-a100": "kw", "igkw": "igkw"}

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ModelRegistry(tmp_path / "nope")

    def test_malformed_file_is_skipped_not_fatal(self, private_dir):
        (private_dir / "broken.json").write_text("{not json")
        registry = ModelRegistry(private_dir)
        assert "broken" not in registry
        assert "broken" in registry.errors
        assert len(registry) == 4

    def test_unknown_name_lists_hosted(self, registry):
        with pytest.raises(KeyError, match="hosted"):
            registry.get("nope")


class TestHotReload:
    def test_mtime_change_reloads(self, private_dir):
        registry = ModelRegistry(private_dir)
        before = registry.get("kw-a100")
        _touch(private_dir / "kw-a100.json")
        after = registry.get("kw-a100")
        assert after.model is not before.model
        assert after.reloads == before.reloads + 1
        assert registry.reload_count() == 1

    def test_unchanged_file_is_not_reloaded(self, private_dir):
        registry = ModelRegistry(private_dir)
        assert registry.get("kw-a100").model \
            is registry.get("kw-a100").model
        assert registry.reload_count() == 0

    def test_reload_swaps_model_content(self, private_dir):
        registry = ModelRegistry(private_dir)
        assert registry.get("kw-a100").kind == "kw"
        shutil.copy(private_dir / "lw-a100.json",
                    private_dir / "kw-a100.json")
        _touch(private_dir / "kw-a100.json")
        assert registry.get("kw-a100").kind == "lw"

    def test_deleted_file_becomes_unknown(self, private_dir):
        registry = ModelRegistry(private_dir)
        registry.get("e2e-a100")
        (private_dir / "e2e-a100.json").unlink()
        with pytest.raises(KeyError, match="removed"):
            registry.get("e2e-a100")
        assert "e2e-a100" not in registry

    def test_rescan_discovers_new_files(self, private_dir):
        registry = ModelRegistry(private_dir)
        shutil.copy(private_dir / "lw-a100.json",
                    private_dir / "lw-copy.json")
        assert "lw-copy" in registry.scan()
        assert registry.get("lw-copy").kind == "lw"

    def test_size_change_reloads_even_with_identical_mtime(self,
                                                           private_dir):
        """Regression: a float mtime alone misses same-tick rewrites."""
        path = private_dir / "kw-a100.json"
        registry = ModelRegistry(private_dir)
        before = registry.get("kw-a100")
        stat = path.stat()
        path.write_text(path.read_text() + " ")     # new size, then pin
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert path.stat().st_mtime_ns == stat.st_mtime_ns
        after = registry.get("kw-a100")
        assert after.reloads == before.reloads + 1
        assert after.model is not before.model

    def test_stamp_and_mtime_views(self, private_dir):
        registry = ModelRegistry(private_dir)
        entry = registry.get("kw-a100")
        stat = entry.path.stat()
        assert entry.stamp == (stat.st_mtime_ns, stat.st_size)
        assert entry.mtime == pytest.approx(stat.st_mtime_ns / 1e9)
        assert entry.describe()["mtime"] == entry.mtime


class TestResolve:
    def test_single_gpu_models_ignore_target(self, registry):
        model = registry.resolve("kw-a100", gpu_name="V100")
        assert model is registry.get("kw-a100").model

    def test_igkw_requires_gpu(self, registry):
        with pytest.raises(ModelResolutionError, match="target 'gpu'"):
            registry.resolve("igkw")

    def test_igkw_materialises_and_memoises(self, registry):
        first = registry.resolve("igkw", gpu_name="V100")
        assert isinstance(first, KernelTablePredictor)
        assert registry.resolve("igkw", gpu_name="V100") is first
        other = registry.resolve("igkw", gpu_name="A40")
        assert other is not first

    def test_igkw_bandwidth_override_changes_prediction(self, registry):
        network = zoo.build("resnet18")
        slow = registry.resolve("igkw", gpu_name="V100", bandwidth=300.0)
        fast = registry.resolve("igkw", gpu_name="V100", bandwidth=2000.0)
        assert slow.predict_network(network, 64) \
            > fast.predict_network(network, 64)

    def test_igkw_rejects_nonpositive_bandwidth(self, registry):
        with pytest.raises(ModelResolutionError, match="positive"):
            registry.resolve("igkw", gpu_name="V100", bandwidth=0.0)

    def test_unknown_gpu_raises_key_error(self, registry):
        with pytest.raises(KeyError, match="unknown GPU"):
            registry.resolve("igkw", gpu_name="TPUv9")

    def test_first_of_kind(self, registry):
        assert registry.first_of_kind("e2e").name == "e2e-a100"
        assert registry.first_of_kind("igkw").name == "igkw"

    def test_model_kind_rejects_foreign_objects(self):
        with pytest.raises(TypeError):
            model_kind(object())
