"""Service fixtures: a model directory and a live server, built once."""

from __future__ import annotations

import threading

import pytest

from repro import core
from repro.gpu import gpu
from repro.service import (
    ModelRegistry,
    PredictionCache,
    PredictionService,
    make_server,
)


@pytest.fixture(scope="session")
def models_dir(small_dataset, tmp_path_factory):
    """A directory hosting all four model kinds, trained on A100."""
    directory = tmp_path_factory.mktemp("served-models")
    for kind in ("e2e", "lw", "kw"):
        core.save_model(
            core.train_model(small_dataset, kind, gpu="A100"),
            directory / f"{kind}-a100.json")
    core.save_model(
        core.train_inter_gpu_model(
            small_dataset, [gpu("A100"), gpu("TITAN RTX")]),
        directory / "igkw.json")
    return directory


@pytest.fixture()
def registry(models_dir):
    return ModelRegistry(models_dir)


@pytest.fixture()
def live_server(registry):
    """A running threaded server on an ephemeral port, torn down after."""
    service = PredictionService(registry, cache=PredictionCache(256))
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
