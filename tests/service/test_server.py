"""HTTP integration tests: a live server, concurrent clients, loadgen."""

import json
from concurrent.futures import ThreadPoolExecutor
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro.cli import main


def _get(url: str):
    with urlopen(url, timeout=10) as response:
        body = response.read()
        if response.headers.get_content_type() == "application/json":
            return response.status, json.loads(body)
        return response.status, body.decode()


def _post(base_url: str, payload: dict):
    request = Request(f"{base_url}/predict",
                      data=json.dumps(payload).encode(),
                      headers={"Content-Type": "application/json"},
                      method="POST")
    try:
        with urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndToEnd:
    def test_concurrent_predicts_metrics_and_loadgen(self, live_server,
                                                     capsys):
        """The acceptance scenario in one pass: concurrent KW and IGKW
        requests, one fallback-tier answer, metrics that add up, a
        nonzero cache hit ratio, and a loadgen throughput report."""
        url, service = live_server
        kw = {"model": "kw-a100", "network": "resnet50",
              "batch_size": 64}
        igkw = {"model": "igkw", "network": "resnet18",
                "batch_size": 64, "gpu": "V100"}
        # prime the cache once per payload, then fire 8 concurrent
        # requests alternating the two hosted models: every concurrent
        # answer must come back from the cache
        for payload in (kw, igkw):
            status, body = _post(url, payload)
            assert status == 200 and body["cached"] is False
        payloads = [kw, igkw] * 4
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda p: _post(url, p), payloads))
        assert [status for status, _ in results] == [200] * 8
        for _, body in results:
            assert body["predicted_us"] > 0
            assert body["tier"] == "kw"
            assert body["cached"] is True
        assert {body["kind"] for _, body in results} == {"kw", "igkw"}

        # one fallback-tier response: transformer shapes are unknown to
        # the CNN-trained KW table, so the LW tier answers
        status, degraded = _post(url, {"model": "kw-a100",
                                       "network": "bert_small",
                                       "batch_size": 64})
        assert status == 200
        assert degraded["tier"] == "lw"
        assert degraded["attempts"][0]["error"] is not None

        status, metrics = _get(f"{url}/metrics")
        assert status == 200
        counters = metrics["counters"]
        assert counters["requests_predict_total"] == 11
        assert "errors_predict_total" not in counters
        # 2 computed + 1 degraded at lw; cached answers are not re-tiered
        assert counters["tier_kw_total"] == 2
        assert counters["tier_lw_total"] == 1
        assert counters["degraded_total"] == 1
        assert metrics["cache"]["hits"] == 8
        assert metrics["cache"]["hit_ratio"] > 0
        assert metrics["histograms"]["latency_predict_ms"]["count"] == 11
        assert metrics["registry"]["models"] == 4

        # drive the same live server with the CLI load generator
        code = main(["loadgen", "--url", url, "--model", "kw-a100",
                     "--network", "resnet50", "--network", "vgg11",
                     "--batch-size", "64", "--rate", "400",
                     "--requests", "40", "--threads", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved" in out and "req/s" in out
        assert "p50" in out and "p99" in out
        assert "40 ok, 0 failed" in out

        # loadgen traffic shows up in the server's own metrics
        _, after = _get(f"{url}/metrics")
        assert after["counters"]["requests_predict_total"] == 51


class TestEndpoints:
    def test_healthz(self, live_server):
        url, _ = live_server
        status, body = _get(f"{url}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["models"] == 4

    def test_models_listing(self, live_server):
        url, _ = live_server
        status, body = _get(f"{url}/models")
        assert status == 200
        names = {entry["name"]: entry["kind"] for entry in body["models"]}
        assert names == {"e2e-a100": "e2e", "lw-a100": "lw",
                         "kw-a100": "kw", "igkw": "igkw"}

    def test_metrics_text_format(self, live_server):
        url, _ = live_server
        status, text = _get(f"{url}/metrics?format=text")
        assert status == 200
        assert "repro_cache_hit_ratio" in text
        assert "repro_requests_metrics_total 1" in text

    def test_unknown_route_404(self, live_server):
        url, _ = live_server
        with pytest.raises(HTTPError) as excinfo:
            urlopen(f"{url}/nope", timeout=10)
        assert excinfo.value.code == 404

    def test_igkw_with_bandwidth_override(self, live_server):
        url, _ = live_server
        base = {"model": "igkw", "network": "resnet18", "batch_size": 64,
                "gpu": "V100"}
        _, stock = _post(url, base)
        _, slowed = _post(url, dict(base, bandwidth=200.0))
        assert slowed["predicted_us"] > stock["predicted_us"]


class TestUptime:
    def test_uptime_ignores_wall_clock_steps(self, registry, monkeypatch):
        """Uptime is measured on the monotonic clock: an NTP step or a
        manual wall-clock change must never push /healthz negative."""
        from repro.service.server import PredictionService

        service = PredictionService(registry)
        wall_start = service.started_at
        monkeypatch.setattr("repro.service.server.time.time",
                            lambda: wall_start - 86400.0)
        assert service.health()["uptime_s"] >= 0.0
        assert service.metrics_snapshot()["uptime_s"] >= 0.0
        assert service.health()["uptime_s"] < 60.0
        # the wall-clock start stays available as provenance
        assert service.started_at == wall_start


class TestBadRequests:
    @pytest.mark.parametrize("payload,status,fragment", [
        ({"network": "resnet50", "batch_size": 64}, 400, "model"),
        ({"model": "kw-a100", "batch_size": 64}, 400, "network"),
        ({"model": "kw-a100", "network": "resnet50"}, 400, "batch_size"),
        ({"model": "kw-a100", "network": "resnet50", "batch_size": 0},
         400, ">= 1"),
        ({"model": "nope", "network": "resnet50", "batch_size": 64},
         404, "unknown model"),
        ({"model": "kw-a100", "network": "resnet9000", "batch_size": 64},
         404, "unknown model 'resnet9000'"),
        ({"model": "igkw", "network": "resnet50", "batch_size": 64},
         400, "target 'gpu'"),
        ({"model": "igkw", "network": "resnet50", "batch_size": 64,
          "gpu": "TPUv9"}, 404, "unknown GPU"),
    ])
    def test_rejections(self, live_server, payload, status, fragment):
        url, _ = live_server
        got_status, body = _post(url, payload)
        assert got_status == status
        assert fragment in body["error"]

    def test_malformed_json_body(self, live_server):
        url, _ = live_server
        request = Request(f"{url}/predict", data=b"{not json",
                          headers={"Content-Type": "application/json"},
                          method="POST")
        with pytest.raises(HTTPError) as excinfo:
            urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_errors_are_counted(self, live_server):
        url, service = live_server
        _post(url, {"model": "nope", "network": "resnet50",
                    "batch_size": 64})
        assert service.metrics.counter("errors_predict_total") == 1


class TestServeCli:
    def test_missing_model_directory_exits_2(self, tmp_path, capsys):
        code = main(["serve", "--models", str(tmp_path / "nowhere"),
                     "--port", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
