"""LoadGenerator: payload validation, failure latencies, batch mode."""

import pytest

from repro.service.loadgen import LoadGenerator, LoadReport


def _generator(url="http://127.0.0.1:1", payloads=None, **kwargs):
    if payloads is None:
        payloads = [{"model": "kw-a100", "network": "resnet50",
                     "batch_size": 64}]
    defaults = dict(rate_rps=10_000.0, n_requests=4, threads=2,
                    timeout_s=10.0)
    defaults.update(kwargs)
    return LoadGenerator(url, payloads, **defaults)


class TestPayloadValidation:
    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one request"):
            _generator(payloads=[])

    def test_empty_generator_rejected(self):
        """The historical crash: a generator argument is always truthy,
        so the old emptiness check admitted an empty stream and run()
        died with ZeroDivisionError at ``index % len(payloads)``."""
        with pytest.raises(ValueError, match="at least one request"):
            _generator(payloads=(payload for payload in ()))

    def test_generator_payloads_are_materialised(self):
        stream = (payload for payload in
                  [{"model": "m", "network": "n", "batch_size": 1}])
        generator = _generator(payloads=stream)
        # the stream must survive being scheduled more than once
        assert generator.payloads == [
            {"model": "m", "network": "n", "batch_size": 1}]
        assert generator._schedule().qsize() == 4

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            _generator(payloads=["resnet50"])

    def test_single_dict_is_wrapped(self):
        generator = _generator(
            payloads={"model": "m", "network": "n", "batch_size": 1})
        assert len(generator.payloads) == 1

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="thread"):
            _generator(threads=0)
        with pytest.raises(ValueError, match="batch"):
            _generator(batch=0)


class TestSchedule:
    def test_batch_mode_posts_ceil_div_groups(self):
        generator = _generator(n_requests=10, batch=4)
        work = generator._schedule()
        groups = []
        while not work.empty():
            groups.append(work.get_nowait()[1])
        assert len(groups) == 3                  # ceil(10 / 4)
        assert sorted(len(group) for group in groups) == [2, 4, 4]
        assert sum(len(group) for group in groups) == 10

    def test_single_mode_posts_one_payload_each(self):
        generator = _generator(n_requests=3)
        work = generator._schedule()
        sizes = []
        while not work.empty():
            sizes.append(len(work.get_nowait()[1]))
        assert sizes == [1, 1, 1]


class TestFailureLatencies:
    def test_transport_failure_fails_every_carried_item(self):
        # nothing listens on port 1: the whole post fails, and every
        # item it carried is counted as failed
        generator = _generator(n_requests=4, batch=2, threads=1)
        report = generator.run()
        assert report.succeeded == 0
        assert report.failed == 4
        assert report.latencies_ms == ()
        assert len(report.failed_latencies_ms) == 2    # one per post
        assert report.failed_latency_percentile_ms(50) >= 0

    def test_failed_posts_keep_their_latency_separately(self):
        generator = _generator(n_requests=2, threads=1)
        report = generator.run()
        # failed request latency is observable, not silently dropped
        assert len(report.failed_latencies_ms) == 2
        assert report.latencies_ms == ()
        assert "failures" in report.render()
        assert "2 failed posts" in report.render()

    def test_report_without_failures_has_no_failure_line(self):
        report = LoadReport(url="http://x", offered_rps=1.0, sent=1,
                            succeeded=1, failed=0, elapsed_s=1.0,
                            latencies_ms=(2.0,))
        assert "failures" not in report.render()
        assert report.failed_latency_percentile_ms(99) == 0.0


class TestBatchModeLive:
    def test_batch_mode_per_item_accounting(self, live_server):
        url, service = live_server
        good = {"model": "kw-a100", "network": "resnet50",
                "batch_size": 64}
        generator = LoadGenerator(url, [good], rate_rps=10_000.0,
                                  n_requests=9, threads=2, batch=4)
        report = generator.run()
        assert report.succeeded == 9
        assert report.failed == 0
        assert report.failed_latencies_ms == ()
        # 3 posts: ceil(9 / 4)
        assert len(report.latencies_ms) == 3
        assert report.tier_counts.get("kw") == 9
        # one compute, then in-batch and cross-batch cache hits
        assert report.cache_hits == 8
        assert service.metrics.counter("batch_items_total") == 9

    def test_batch_mode_separates_item_failures(self, live_server):
        url, _ = live_server
        good = {"model": "kw-a100", "network": "resnet50",
                "batch_size": 64}
        bad = {"model": "nope", "network": "resnet50", "batch_size": 64}
        generator = LoadGenerator(url, [good, bad], rate_rps=10_000.0,
                                  n_requests=4, threads=1, batch=2)
        report = generator.run()
        # every post carried one good and one bad item: the items split
        # ok/failed, and the post latencies land in the failure bucket
        assert report.succeeded == 2
        assert report.failed == 2
        assert report.latencies_ms == ()
        assert len(report.failed_latencies_ms) == 2
        assert any("item error 404" in reason for reason in report.errors)
