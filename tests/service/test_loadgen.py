"""LoadGenerator: payload validation, failure latencies, batch mode."""

import pytest

from repro.service.loadgen import (
    LoadGenerator,
    LoadReport,
    merge_reports,
    run_multiprocess,
)


def _generator(url="http://127.0.0.1:1", payloads=None, **kwargs):
    if payloads is None:
        payloads = [{"model": "kw-a100", "network": "resnet50",
                     "batch_size": 64}]
    defaults = dict(rate_rps=10_000.0, n_requests=4, threads=2,
                    timeout_s=10.0)
    defaults.update(kwargs)
    return LoadGenerator(url, payloads, **defaults)


class TestPayloadValidation:
    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one request"):
            _generator(payloads=[])

    def test_empty_generator_rejected(self):
        """The historical crash: a generator argument is always truthy,
        so the old emptiness check admitted an empty stream and run()
        died with ZeroDivisionError at ``index % len(payloads)``."""
        with pytest.raises(ValueError, match="at least one request"):
            _generator(payloads=(payload for payload in ()))

    def test_generator_payloads_are_materialised(self):
        stream = (payload for payload in
                  [{"model": "m", "network": "n", "batch_size": 1}])
        generator = _generator(payloads=stream)
        # the stream must survive being scheduled more than once
        assert generator.payloads == [
            {"model": "m", "network": "n", "batch_size": 1}]
        assert generator._schedule().qsize() == 4

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            _generator(payloads=["resnet50"])

    def test_single_dict_is_wrapped(self):
        generator = _generator(
            payloads={"model": "m", "network": "n", "batch_size": 1})
        assert len(generator.payloads) == 1

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="thread"):
            _generator(threads=0)
        with pytest.raises(ValueError, match="batch"):
            _generator(batch=0)


class TestSchedule:
    def test_batch_mode_posts_ceil_div_groups(self):
        generator = _generator(n_requests=10, batch=4)
        work = generator._schedule()
        groups = []
        while not work.empty():
            groups.append(work.get_nowait()[1])
        assert len(groups) == 3                  # ceil(10 / 4)
        assert sorted(len(group) for group in groups) == [2, 4, 4]
        assert sum(len(group) for group in groups) == 10

    def test_single_mode_posts_one_payload_each(self):
        generator = _generator(n_requests=3)
        work = generator._schedule()
        sizes = []
        while not work.empty():
            sizes.append(len(work.get_nowait()[1]))
        assert sizes == [1, 1, 1]


class TestFailureLatencies:
    def test_transport_failure_fails_every_carried_item(self):
        # nothing listens on port 1: the whole post fails, and every
        # item it carried is counted as failed
        generator = _generator(n_requests=4, batch=2, threads=1)
        report = generator.run()
        assert report.succeeded == 0
        assert report.failed == 4
        assert report.latencies_ms == ()
        assert len(report.failed_latencies_ms) == 2    # one per post
        assert report.failed_latency_percentile_ms(50) >= 0

    def test_failed_posts_keep_their_latency_separately(self):
        generator = _generator(n_requests=2, threads=1)
        report = generator.run()
        # failed request latency is observable, not silently dropped
        assert len(report.failed_latencies_ms) == 2
        assert report.latencies_ms == ()
        assert "failures" in report.render()
        assert "2 failed posts" in report.render()

    def test_report_without_failures_has_no_failure_line(self):
        report = LoadReport(url="http://x", offered_rps=1.0, sent=1,
                            succeeded=1, failed=0, elapsed_s=1.0,
                            latencies_ms=(2.0,))
        assert "failures" not in report.render()
        assert report.failed_latency_percentile_ms(99) == 0.0


class TestBatchModeLive:
    def test_batch_mode_per_item_accounting(self, live_server):
        url, service = live_server
        good = {"model": "kw-a100", "network": "resnet50",
                "batch_size": 64}
        generator = LoadGenerator(url, [good], rate_rps=10_000.0,
                                  n_requests=9, threads=2, batch=4)
        report = generator.run()
        assert report.succeeded == 9
        assert report.failed == 0
        assert report.failed_latencies_ms == ()
        # 3 posts: ceil(9 / 4)
        assert len(report.latencies_ms) == 3
        assert report.tier_counts.get("kw") == 9
        # one compute, then in-batch and cross-batch cache hits
        assert report.cache_hits == 8
        assert service.metrics.counter("batch_items_total") == 9

    def test_batch_mode_separates_item_failures(self, live_server):
        url, _ = live_server
        good = {"model": "kw-a100", "network": "resnet50",
                "batch_size": 64}
        bad = {"model": "nope", "network": "resnet50", "batch_size": 64}
        generator = LoadGenerator(url, [good, bad], rate_rps=10_000.0,
                                  n_requests=4, threads=1, batch=2)
        report = generator.run()
        # every post carried one good and one bad item: the items split
        # ok/failed, and the post latencies land in the failure bucket
        assert report.succeeded == 2
        assert report.failed == 2
        assert report.latencies_ms == ()
        assert len(report.failed_latencies_ms) == 2
        assert any("item error 404" in reason for reason in report.errors)


class TestShedBucket:
    def _report(self, **overrides):
        defaults = dict(url="http://x", offered_rps=1.0, sent=4,
                        succeeded=2, failed=0, elapsed_s=1.0,
                        latencies_ms=(2.0, 3.0), shed=2,
                        shed_latencies_ms=(1.0, 1.5))
        defaults.update(overrides)
        return LoadReport(**defaults)

    def test_shed_is_not_a_failure(self):
        report = self._report()
        assert report.failed == 0
        assert report.shed == 2
        assert report.shed_rate == 0.5
        assert "2 items refused with 429" in report.render()
        assert "50.0% of offered" in report.render()

    def test_429_outcomes_classify_as_shed(self, monkeypatch):
        generator = _generator(n_requests=3, threads=1)
        monkeypatch.setattr(
            generator, "_post",
            lambda payload: (False, None, "HTTP 429: overloaded", 429))
        report = generator.run()
        assert report.shed == 3
        assert report.failed == 0
        assert report.succeeded == 0
        assert len(report.shed_latencies_ms) == 3
        assert report.latencies_ms == ()
        assert report.errors == {}

    def test_batch_item_429_classifies_as_shed(self, monkeypatch):
        generator = _generator(n_requests=4, threads=1, batch=2)
        document = {"count": 2, "errors": 2, "results": [
            {"error": "overloaded", "status": 429},
            {"error": "boom", "status": 500},
        ]}
        monkeypatch.setattr(
            generator, "_post_batch",
            lambda group: (True, document, "", 200))
        report = generator.run()
        assert report.shed == 2
        assert report.failed == 2
        # the post latency lands in the worst bucket it carried: failed
        assert len(report.failed_latencies_ms) == 2
        assert report.shed_latencies_ms == ()

    def test_p999_is_reported(self):
        report = self._report(latencies_ms=tuple(float(i)
                                                 for i in range(1000)))
        assert report.latency_percentile_ms(99.9) == 999.0
        assert "p99.9" in report.render()


class TestReportWireFormat:
    def test_to_dict_round_trips(self):
        report = LoadReport(
            url="http://x", offered_rps=10.0, sent=5, succeeded=3,
            failed=1, elapsed_s=2.0, latencies_ms=(1.0, 2.0, 3.0),
            tier_counts={"kw": 3}, errors={"HTTP 500: boom": 1},
            cache_hits=1, failed_latencies_ms=(9.0,), shed=1,
            shed_latencies_ms=(4.0,))
        restored = LoadReport.from_dict(report.to_dict())
        assert restored == report

    def test_from_dict_is_json_safe(self):
        import json as json_module
        report = LoadReport(url="http://x", offered_rps=1.0, sent=1,
                            succeeded=1, failed=0, elapsed_s=1.0,
                            latencies_ms=(2.0,))
        over_the_wire = json_module.loads(
            json_module.dumps(report.to_dict()))
        assert LoadReport.from_dict(over_the_wire) == report


class TestMergeReports:
    def _report(self, latencies, shed_latencies=(), failed_latencies=(),
                tier_counts=None, errors=None, offered=10.0,
                elapsed=1.0):
        return LoadReport(
            url="http://x", offered_rps=offered, sent=len(latencies)
            + len(shed_latencies) + len(failed_latencies),
            succeeded=len(latencies), failed=len(failed_latencies),
            elapsed_s=elapsed, latencies_ms=tuple(latencies),
            tier_counts=dict(tier_counts or {}),
            errors=dict(errors or {}), cache_hits=0,
            failed_latencies_ms=tuple(failed_latencies),
            shed=len(shed_latencies),
            shed_latencies_ms=tuple(shed_latencies))

    def test_percentiles_come_from_the_union_never_averaged(self):
        # one fast process, one slow process: the merged p99 must be the
        # p99 of the union of samples, not the mean of per-process p99s
        fast = self._report([1.0] * 99)
        slow = self._report([1000.0])
        merged = merge_reports([fast, slow])
        union = sorted((1.0,) * 99 + (1000.0,))
        expected_p99 = union[min(len(union) - 1,
                                 int(99 / 100 * len(union)))]
        assert merged.latency_percentile_ms(99) == expected_p99
        naive = (fast.latency_percentile_ms(99)
                 + slow.latency_percentile_ms(99)) / 2
        assert merged.latency_percentile_ms(99) != naive

    def test_counts_rates_and_tallies_sum(self):
        left = self._report([1.0, 2.0], shed_latencies=[5.0],
                            tier_counts={"kw": 2},
                            errors={}, offered=10.0, elapsed=1.0)
        right = self._report([3.0], failed_latencies=[9.0],
                             tier_counts={"kw": 1, "lw": 1},
                             errors={"HTTP 500: boom": 1},
                             offered=20.0, elapsed=2.5)
        merged = merge_reports([left, right])
        assert merged.sent == left.sent + right.sent
        assert merged.succeeded == 3
        assert merged.failed == 1
        assert merged.shed == 1
        assert merged.offered_rps == 30.0
        assert merged.elapsed_s == 2.5            # slowest process
        assert merged.latencies_ms == (1.0, 2.0, 3.0)
        assert merged.shed_latencies_ms == (5.0,)
        assert merged.failed_latencies_ms == (9.0,)
        assert merged.tier_counts == {"kw": 3, "lw": 1}
        assert merged.errors == {"HTTP 500: boom": 1}

    def test_merge_of_one_is_identity(self):
        report = self._report([1.0, 2.0], tier_counts={"kw": 2})
        assert merge_reports([report]) == report

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="at least one report"):
            merge_reports([])


class TestMultiprocess:
    def test_procs_must_be_positive(self):
        with pytest.raises(ValueError, match="procs"):
            run_multiprocess("http://x", [{"a": 1}], rate_rps=1.0,
                             n_requests=1, procs=0)

    def test_two_procs_drive_a_live_server(self, live_server):
        url, _ = live_server
        payloads = [{"model": "kw-a100", "network": "resnet50",
                     "batch_size": 64}]
        report = run_multiprocess(url, payloads, rate_rps=5000.0,
                                  n_requests=10, procs=2, threads=2)
        assert report.sent == 10
        assert report.succeeded == 10
        assert report.failed == 0
        assert report.shed == 0
        assert len(report.latencies_ms) == 10
        # both children drove half the offered rate; the merged report
        # restores the full offered rate
        assert report.offered_rps == 5000.0

    def test_request_count_splits_exactly(self, live_server):
        url, _ = live_server
        payloads = [{"model": "kw-a100", "network": "resnet50",
                     "batch_size": 64}]
        report = run_multiprocess(url, payloads, rate_rps=5000.0,
                                  n_requests=7, procs=3, threads=1)
        assert report.sent == 7
        assert report.succeeded == 7
