"""Tests for the KW -> LW -> E2E fallback chain."""

import pytest

from repro import zoo
from repro.service import (
    FallbackChain,
    PredictionError,
    TierError,
    build_chain,
)


@pytest.fixture()
def kw_predictor(registry):
    return registry.get("kw-a100").model


class TestBuildChain:
    def test_kernel_model_gets_full_chain(self, kw_predictor, registry):
        chain = build_chain(kw_predictor, registry)
        assert chain.tier_names() == ["kw", "lw", "e2e"]

    def test_lw_model_degrades_to_hosted_e2e(self, registry):
        chain = build_chain(registry.get("lw-a100").model, registry)
        assert chain.tier_names() == ["lw", "e2e"]

    def test_e2e_model_stands_alone(self, registry):
        chain = build_chain(registry.get("e2e-a100").model, registry)
        assert chain.tier_names() == ["e2e"]

    def test_without_registry_no_hosted_tier(self, kw_predictor):
        assert build_chain(kw_predictor).tier_names() == ["kw", "lw"]

    def test_igkw_resolved_predictor_gets_full_chain(self, registry):
        predictor = registry.resolve("igkw", gpu_name="V100")
        chain = build_chain(predictor, registry)
        assert chain.tier_names() == ["kw", "lw", "e2e"]

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FallbackChain([])


class TestPredict:
    def test_covered_network_answers_at_kw(self, kw_predictor, registry):
        chain = build_chain(kw_predictor, registry)
        network = zoo.build("resnet50")
        outcome = chain.predict(network, 64)
        assert outcome.tier == "kw"
        assert not outcome.degraded
        assert outcome.attempts == (("kw", None),)
        assert outcome.value_us == pytest.approx(
            kw_predictor.predict_network(network, 64))

    def test_unknown_shapes_degrade_to_lw(self, kw_predictor, registry):
        """A transformer against a CNN-trained KW model: the mapping
        table misses, coverage flags the prediction, LW answers."""
        chain = build_chain(kw_predictor, registry)
        outcome = chain.predict(zoo.build("bert_small"), 64)
        assert outcome.tier == "lw"
        assert outcome.degraded
        assert outcome.attempts[0][0] == "kw"
        assert "unmapped" in outcome.attempts[0][1]
        assert outcome.value_us == pytest.approx(
            kw_predictor.lw_fallback.predict_network(
                zoo.build("bert_small"), 64))

    def test_strict_threshold_forces_degradation(self, kw_predictor,
                                                 registry):
        """coverage_threshold=0 rejects any fallback time at the KW
        tier, even for a well-covered CNN variant."""
        chain = build_chain(kw_predictor, registry, coverage_threshold=0.0)
        outcome = chain.predict(zoo.build("bert_small"), 64)
        assert outcome.tier in ("lw", "e2e")

    def test_chain_reaches_e2e_when_lw_fails(self, registry):
        def broken(network, batch_size):
            raise TierError("boom")

        e2e = registry.get("e2e-a100").model
        chain = FallbackChain([("kw", broken), ("lw", broken),
                               ("e2e", e2e.predict_network)])
        outcome = chain.predict(zoo.build("resnet18"), 64)
        assert outcome.tier == "e2e"
        assert [name for name, _ in outcome.attempts] == ["kw", "lw",
                                                          "e2e"]
        assert outcome.attempts[0][1] == "boom"

    def test_all_tiers_failing_raises(self):
        def broken(network, batch_size):
            raise TierError("down")

        chain = FallbackChain([("kw", broken), ("lw", broken)])
        with pytest.raises(PredictionError, match="every fallback tier"):
            chain.predict(zoo.build("resnet18"), 64)

    def test_tier_counts_match_coverage_semantics(self, kw_predictor,
                                                  registry):
        """Every small-roster CNN the model trained on answers at kw."""
        chain = build_chain(kw_predictor, registry)
        for name in ("alexnet", "resnet18", "vgg11", "mobilenet_v2"):
            assert chain.predict(zoo.build(name), 64).tier == "kw"
