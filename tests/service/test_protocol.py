"""Frame protocol: length-prefixed JSON over a stream socket."""

import socket
import struct

import pytest

from repro.service import protocol


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    try:
        yield left, right
    finally:
        left.close()
        right.close()


class TestFrames:
    def test_request_round_trip(self, pair):
        left, right = pair
        sent = protocol.request(7, protocol.OP_PREDICT,
                                {"model": "kw-a100", "batch_size": 64})
        protocol.send_frame(left, sent)
        assert protocol.recv_frame(right) == sent

    def test_response_round_trip(self, pair):
        left, right = pair
        sent = protocol.response(7, 404, {"error": "unknown model"})
        protocol.send_frame(left, sent)
        received = protocol.recv_frame(right)
        assert protocol.parse_response(received) == (
            404, {"error": "unknown model"})

    def test_back_to_back_frames_do_not_bleed(self, pair):
        left, right = pair
        for request_id in range(3):
            protocol.send_frame(left, protocol.request(
                request_id, protocol.OP_PING, {}))
        for request_id in range(3):
            assert protocol.recv_frame(right)["id"] == request_id

    def test_large_payload(self, pair):
        left, right = pair
        payload = {"items": [{"network": "x" * 64}] * 2000}
        done = []

        # a frame bigger than the socketpair buffer needs a concurrent
        # reader; send from a thread and receive here
        import threading

        def sender():
            done.append(protocol.send_frame(
                left, protocol.request(1, protocol.OP_PREDICT_BATCH,
                                       payload)))

        thread = threading.Thread(target=sender)
        thread.start()
        received = protocol.recv_frame(right)
        thread.join(timeout=5)
        assert received["payload"] == payload
        assert done and done[0] > len(str(payload))


class TestConnectionClosed:
    def test_eof_between_frames_is_clean(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(protocol.ConnectionClosed) as excinfo:
            protocol.recv_frame(right)
        assert excinfo.value.clean is True

    def test_eof_inside_header_is_dirty(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")                 # half a length prefix
        left.close()
        with pytest.raises(protocol.ConnectionClosed) as excinfo:
            protocol.recv_frame(right)
        assert excinfo.value.clean is False

    def test_eof_inside_body_is_dirty(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 100) + b"{\"truncated")
        left.close()
        with pytest.raises(protocol.ConnectionClosed) as excinfo:
            protocol.recv_frame(right)
        assert excinfo.value.clean is False


class TestCorruption:
    def test_over_limit_length_prefix_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.recv_frame(right)

    def test_non_json_body_rejected(self, pair):
        left, right = pair
        body = b"not json at all"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(protocol.ProtocolError, match="not valid JSON"):
            protocol.recv_frame(right)

    def test_parse_response_rejects_non_responses(self):
        with pytest.raises(protocol.ProtocolError, match="not a response"):
            protocol.parse_response({"id": 1, "op": "predict"})
        with pytest.raises(protocol.ProtocolError, match="not a response"):
            protocol.parse_response("nope")

    def test_worker_ops_cover_every_constant(self):
        names = {value for name, value in vars(protocol).items()
                 if name.startswith("OP_")}
        assert names == set(protocol.WORKER_OPS)
