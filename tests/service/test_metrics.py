"""Tests for the thread-safe metrics registry and histograms."""

import threading

import pytest

from repro.service import Histogram, MetricsRegistry


class TestHistogram:
    def test_observe_counts_and_mean(self):
        histogram = Histogram(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.mean == pytest.approx(138.875)

    def test_percentiles_are_bucket_bounds(self):
        histogram = Histogram(buckets=(1.0, 10.0, 100.0))
        for _ in range(99):
            histogram.observe(0.5)
        histogram.observe(50.0)
        assert histogram.percentile(50) == 1.0
        assert histogram.percentile(100) == 100.0

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_percentile_zero_finds_first_occupied_bucket(self):
        """Regression: p0 reported bounds[0] even with all mass higher."""
        histogram = Histogram(buckets=(1.0, 10.0, 100.0))
        histogram.observe(50.0)                # only the le_100 bucket
        assert histogram.percentile(0) == 100.0
        assert histogram.percentile(50) == 100.0

    def test_percentile_zero_with_mass_in_first_bucket(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(50.0)
        assert histogram.percentile(0) == 1.0

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 1.0))

    def test_snapshot_fields(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(99.0)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 2
        assert snapshot["buckets"] == {"le_1": 1, "le_10": 0}
        assert snapshot["overflow"] == 1
        assert snapshot["p50"] == 1.0


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("requests_predict_total")
        metrics.increment("requests_predict_total", by=2)
        assert metrics.counter("requests_predict_total") == 3
        assert metrics.counter("never_seen") == 0

    def test_observe_creates_histogram(self):
        metrics = MetricsRegistry()
        assert metrics.histogram("latency_ms") is None
        metrics.observe("latency_ms", 3.0)
        assert metrics.histogram("latency_ms").count == 1

    def test_snapshot_shape(self):
        metrics = MetricsRegistry()
        metrics.increment("errors_total")
        metrics.observe("latency_ms", 1.0)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"errors_total": 1}
        assert snapshot["histograms"]["latency_ms"]["count"] == 1

    def test_render_text(self):
        metrics = MetricsRegistry()
        metrics.increment("requests_total", by=5)
        metrics.observe("latency_ms", 2.0)
        text = metrics.render_text()
        assert "repro_requests_total 5" in text
        assert "repro_latency_ms_count 1" in text
        assert "repro_latency_ms_p99" in text

    def test_concurrent_increments_do_not_drop(self):
        metrics = MetricsRegistry()

        def hammer() -> None:
            for _ in range(1000):
                metrics.increment("n")
                metrics.observe("h", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("n") == 8000
        assert metrics.histogram("h").count == 8000
