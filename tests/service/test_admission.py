"""Admission control: deterministic shed/drain/accept under a fake clock."""

import json
import queue
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.frontend import (
    COLD_RETRY_AFTER_S,
    MAX_RETRY_AFTER_S,
    MIN_RETRY_AFTER_S,
    AdmissionController,
    ShedError,
    SLOTracker,
)
from repro.service.metrics import MetricsRegistry
from repro.service.server import make_server


class FakeClock:
    """Injectable monotonic clock: time only moves when told to."""

    def __init__(self) -> None:
        self.now_s = 1000.0

    def __call__(self) -> float:
        return self.now_s

    def advance(self, seconds: float) -> None:
        self.now_s += seconds


class FakeHandle:
    """A worker handle that records what actually reached its queue."""

    def __init__(self, slot=0, capacity=4):
        self.slot = slot
        self.capacity = capacity
        self.submitted = []

    def pending(self):
        return len(self.submitted)

    def submit_nowait(self, op, payload):
        if len(self.submitted) >= self.capacity:
            raise queue.Full
        self.submitted.append((op, payload))
        return object()                      # stands in for PendingCall

    def drain(self, count=1):
        del self.submitted[:count]


def _controller(depth=4, metrics=None, clock=None):
    return AdmissionController(
        depth, metrics=metrics,
        clock=clock if clock is not None else FakeClock())


class TestShedding:
    def test_accepts_below_the_bound(self):
        handle = FakeHandle(capacity=4)
        controller = _controller(depth=4)
        for _ in range(4):
            controller.submit(handle, "predict", "predict", {})
        assert len(handle.submitted) == 4

    def test_sheds_at_the_bound_and_never_reaches_the_worker(self):
        handle = FakeHandle(capacity=4)
        controller = _controller(depth=4)
        for _ in range(4):
            controller.submit(handle, "predict", "predict", {})
        with pytest.raises(ShedError):
            controller.submit(handle, "predict", "predict",
                              {"marker": "must not arrive"})
        # the shed request left no trace in the dispatch queue
        assert all(payload.get("marker") != "must not arrive"
                   for _, payload in handle.submitted)
        assert controller.shed_total() == 1

    def test_queue_full_race_still_sheds(self):
        # depth check passes but the queue is full underneath: the
        # bounded put is the authority and the request is still shed
        handle = FakeHandle(capacity=2)
        controller = _controller(depth=10)
        handle.submit_nowait("predict", {})
        handle.submit_nowait("predict", {})
        with pytest.raises(ShedError):
            controller.submit(handle, "predict", "predict", {})

    def test_shed_drain_accept_cycle_is_deterministic(self):
        clock = FakeClock()
        handle = FakeHandle(capacity=2)
        controller = _controller(depth=2, clock=clock)
        controller.submit(handle, "predict", "predict", {"n": 1})
        controller.submit(handle, "predict", "predict", {"n": 2})
        with pytest.raises(ShedError):                  # full -> shed
            controller.submit(handle, "predict", "predict", {"n": 3})
        clock.advance(5.0)
        handle.drain(1)                                 # drain
        controller.submit(handle, "predict", "predict", {"n": 4})
        assert [payload["n"] for _, payload in handle.submitted] == [2, 4]
        snapshot = controller.snapshot()
        assert snapshot["shed_total"] == 1
        assert snapshot["last_shed_age_s"] == 5.0       # fake clock, exact

    def test_shed_counters_reach_metrics(self):
        metrics = MetricsRegistry()
        handle = FakeHandle(capacity=1)
        controller = _controller(depth=1, metrics=metrics)
        controller.submit(handle, "predict", "predict", {})
        for _ in range(2):
            with pytest.raises(ShedError):
                controller.submit(handle, "predict", "predict", {})
        with pytest.raises(ShedError):
            controller.submit(handle, "predict_batch", "predict_batch", {})
        assert metrics.counter("shed_total") == 3
        assert metrics.counter("shed_predict_total") == 2
        assert metrics.counter("shed_predict_batch_total") == 1


class TestRetryAfter:
    def test_defaults_to_the_minimum_without_observations(self):
        controller = _controller(depth=8)
        assert controller.retry_after_s("predict") == MIN_RETRY_AFTER_S

    def test_scales_with_observed_latency(self):
        controller = _controller(depth=8)
        controller.observe("predict", 1000.0)           # 1s per request
        # 8 queued requests at ~1s each: honest drain estimate is 8s
        assert controller.retry_after_s("predict") == 8

    def test_clamped_to_the_maximum(self):
        controller = _controller(depth=64)
        controller.observe("predict", 10_000.0)
        assert controller.retry_after_s("predict") == MAX_RETRY_AFTER_S

    def test_ewma_tracks_recent_latency(self):
        controller = _controller(depth=10)
        controller.observe("predict", 100.0)
        for _ in range(50):
            controller.observe("predict", 2000.0)
        # the estimate converged towards the new regime
        assert controller.retry_after_s("predict") >= 15

    def test_shed_error_carries_the_estimate(self):
        handle = FakeHandle(capacity=1)
        controller = _controller(depth=1)
        controller.observe("predict", 3000.0)
        controller.submit(handle, "predict", "predict", {})
        with pytest.raises(ShedError) as excinfo:
            controller.submit(handle, "predict", "predict", {})
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s == 3
        assert "retry after 3s" in excinfo.value.message

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            AdmissionController(0)


class TestColdStartRetryAfter:
    """The estimate before the first completed request is explicit.

    A cold controller has no EWMA; the Retry-After it advertises must be
    the deterministic cold-start default, never an estimate derived from
    a zero latency (which would always clamp to the minimum by accident
    rather than by policy).
    """

    def test_very_first_shed_carries_the_cold_default(self):
        handle = FakeHandle(capacity=1)
        controller = _controller(depth=1)
        controller.submit(handle, "predict", "predict", {})
        with pytest.raises(ShedError) as excinfo:   # first shed ever
            controller.submit(handle, "predict", "predict", {})
        assert excinfo.value.retry_after_s == COLD_RETRY_AFTER_S

    def test_custom_cold_default_until_first_observation(self):
        controller = AdmissionController(
            depth := 8, clock=FakeClock(), cold_retry_after_s=5)
        assert controller.retry_after_s("predict") == 5
        controller.observe("predict", 1000.0)       # first completion
        # warmed: the drain estimate takes over (depth x 1s each)
        assert controller.retry_after_s("predict") == depth

    def test_cold_default_is_clamped_to_the_valid_range(self):
        controller = AdmissionController(
            4, clock=FakeClock(), cold_retry_after_s=10_000)
        assert controller.retry_after_s("predict") == MAX_RETRY_AFTER_S
        with pytest.raises(ValueError, match="cold_retry_after_s"):
            AdmissionController(4, cold_retry_after_s=0)

    def test_cold_default_is_per_endpoint(self):
        controller = _controller(depth=8)
        controller.observe("predict", 2000.0)
        # /predict warmed; /predict_batch has never completed a request
        assert controller.retry_after_s("predict") == 16
        assert controller.retry_after_s("predict_batch") == \
            COLD_RETRY_AFTER_S

    def test_snapshot_reports_the_cold_default(self):
        controller = AdmissionController(
            4, clock=FakeClock(), cold_retry_after_s=3)
        assert controller.snapshot()["cold_retry_after_s"] == 3


class _ColdSheddingStub:
    """Service surface whose /predict sheds through a real cold controller."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.controller = AdmissionController(1, clock=FakeClock())
        self.handle = FakeHandle(capacity=1)
        self.handle.submit_nowait("predict", {})     # already full

    def predict(self, payload):
        self.controller.submit(self.handle, "predict", "predict", payload)

    predict_batch = predict
    feedback = predict

    def health(self):
        return {"status": "ok"}


class TestColdRetryAfterHeader:
    def test_header_on_the_very_first_shed(self):
        """End to end: a cold frontend's first 429 already has the header."""
        server = make_server(_ColdSheddingStub(), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            request = urllib.request.Request(
                f"http://{host}:{port}/predict", data=b"{}",
                headers={"Content-Type": "application/json"},
                method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            error = excinfo.value
            assert error.code == 429
            retry_after = error.headers["Retry-After"]
            assert retry_after is not None
            assert retry_after.isdigit()
            assert int(retry_after) == COLD_RETRY_AFTER_S
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class _SheddingStub:
    """Minimal service surface that always sheds /predict."""

    def __init__(self):
        self.metrics = MetricsRegistry()

    def predict(self, payload):
        raise ShedError(retry_after_s=7, slot=0, depth=4)

    predict_batch = predict
    feedback = predict

    def health(self):
        return {"status": "ok"}


class TestRetryAfterHeader:
    def test_429_response_carries_wellformed_retry_after(self):
        server = make_server(_SheddingStub(), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            request = urllib.request.Request(
                f"http://{host}:{port}/predict", data=b"{}",
                headers={"Content-Type": "application/json"},
                method="POST")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            error = excinfo.value
            assert error.code == 429
            retry_after = error.headers["Retry-After"]
            # RFC 7231: delta-seconds, a non-negative integer string
            assert retry_after is not None
            assert retry_after.isdigit()
            assert int(retry_after) == 7
            assert "overloaded" in json.loads(error.read())["error"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestSLOTracker:
    def test_ok_and_breach_buckets(self):
        tracker = SLOTracker({"predict": 50.0})
        assert tracker.observe("predict", 10.0) is False
        assert tracker.observe("predict", 49.9) is False
        assert tracker.observe("predict", 50.1) is True
        report = tracker.snapshot()["predict"]
        assert report["ok"] == 2
        assert report["breach"] == 1
        assert report["attainment"] == round(2 / 3, 4)
        assert report["target_ms"] == 50.0

    def test_untracked_endpoint_is_ignored(self):
        tracker = SLOTracker({"predict": 50.0})
        assert tracker.observe("metrics", 9999.0) is False
        assert "metrics" not in tracker.snapshot()

    def test_idle_endpoint_reports_full_attainment(self):
        tracker = SLOTracker({"predict": 50.0})
        assert tracker.snapshot()["predict"]["attainment"] == 1.0

    def test_default_targets_cover_the_serving_endpoints(self):
        report = SLOTracker().snapshot()
        assert {"predict", "predict_batch", "feedback"} <= set(report)
