"""Scale-out stack end to end: parity with the in-process server,
split batches, feedback forwarding, crash recovery, merged metrics."""

import json
import os
import signal
import time
import types
import urllib.error
import urllib.request

import pytest

from repro.service import (
    ModelRegistry,
    PredictionCache,
    PredictionService,
    make_server,
)
from repro.service.frontend import ScaledServer

# every deterministic /predict and /predict_batch behaviour in one
# corpus: success tiers, every error family, duplicates for the cache
PREDICT_CORPUS = [
    {"model": "kw-a100", "network": "resnet50", "batch_size": 64},
    {"model": "lw-a100", "network": "vgg11", "batch_size": 64},
    {"model": "e2e-a100", "network": "mobilenet_v2", "batch_size": 64},
    {"model": "igkw", "network": "resnet50", "batch_size": 64,
     "gpu": "TITAN RTX"},
    {"model": "igkw", "network": "resnet50", "batch_size": 64,
     "gpu": "A100", "bandwidth": 900.0},
    # the same request again: must hit the (sharded) cache identically
    {"model": "kw-a100", "network": "resnet50", "batch_size": 64},
    # error corpus — messages must come back verbatim from the core
    {"model": "nope", "network": "resnet50", "batch_size": 64},
    {"model": "kw-a100", "network": "not-a-network", "batch_size": 64},
    {"model": "kw-a100", "network": "resnet50"},
    {"model": "kw-a100", "network": "resnet50", "batch_size": -3},
    {"model": "igkw", "network": "resnet50", "batch_size": 64},
    {"model": "igkw", "network": "resnet50", "batch_size": 64,
     "gpu": "NotAGPU"},
    {"network": "resnet50", "batch_size": 64},
]

BATCH_CORPUS = [
    {"items": PREDICT_CORPUS},
    {"items": [
        {"model": "kw-a100", "network": "resnet50", "batch_size": 64},
        {"model": "kw-a100", "network": "resnet50", "batch_size": 64},
        {"model": "igkw", "network": "vgg11", "batch_size": 64,
         "gpu": "A100"},
        "not even an object",
    ]},
    {"items": []},
    {"items": "nope"},
    {},
    {"items": [{"model": "kw-a100", "network": "resnet50",
                "batch_size": 64}] * 300},       # over the 256 cap
]


def _post(url, path, document):
    request = urllib.request.Request(
        f"{url}{path}", data=json.dumps(document).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _get(url, path):
    with urllib.request.urlopen(f"{url}{path}", timeout=60) as response:
        return response.status, response.read()


def _wait_until(predicate, timeout_s=30.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture()
def scaled_server(models_dir):
    server = ScaledServer(models_dir, workers=2, max_queue_depth=64)
    with server:
        host, port = server.httpd.server_address[:2]
        yield f"http://{host}:{port}", server


class TestParityWithInProcessServer:
    """The scale-out frontend must be indistinguishable on the wire.

    The same corpus runs against a fresh in-process server (the
    ``--workers 1`` code path, byte-identical to the pre-refactor
    server by construction) and a 2-worker scaled deployment; /predict
    and /predict_batch responses must match byte for byte — statuses,
    error text, caching behaviour, JSON key order, everything.
    """

    def test_predict_and_batch_bytes_match(self, models_dir,
                                           scaled_server):
        registry = ModelRegistry(models_dir)
        service = PredictionService(registry,
                                    cache=PredictionCache(256))
        inprocess = make_server(service, port=0)
        import threading
        thread = threading.Thread(target=inprocess.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = inprocess.server_address[:2]
        reference_url = f"http://{host}:{port}"
        scaled_url, _ = scaled_server
        try:
            for payload in PREDICT_CORPUS:
                expected = _post(reference_url, "/predict", payload)
                actual = _post(scaled_url, "/predict", payload)
                assert actual == expected, payload
            for payload in BATCH_CORPUS:
                expected = _post(reference_url, "/predict_batch", payload)
                actual = _post(scaled_url, "/predict_batch", payload)
                assert actual == expected, str(payload)[:80]
        finally:
            inprocess.shutdown()
            inprocess.server_close()
            thread.join(timeout=5)


class TestScaledEndpoints:
    def test_batch_splits_across_shards_and_reassembles_in_order(
            self, scaled_server):
        url, server = scaled_server
        # enough distinct networks that both shards certainly get items
        items = [{"model": "kw-a100", "network": network,
                  "batch_size": 64}
                 for network in ("alexnet", "resnet18", "resnet50",
                                 "vgg11", "mobilenet_v2",
                                 "squeezenet1_1", "densenet121",
                                 "shufflenet_v1")]
        slots = {server.pool.route("kw-a100", item["network"]).slot
                 for item in items}
        assert slots == {0, 1}          # the split is real
        status, raw = _post(url, "/predict_batch", {"items": items})
        assert status == 200
        body = json.loads(raw)
        assert body["count"] == len(items)
        assert body["errors"] == 0
        # results come back in request order despite the shard split
        for item, result in zip(items, body["results"]):
            single = json.loads(_post(url, "/predict", item)[1])
            assert result["predicted_us"] == single["predicted_us"]

    def test_health_reports_the_fleet(self, scaled_server):
        url, _ = scaled_server
        status, raw = _get(url, "/healthz")
        body = json.loads(raw)
        assert status == 200
        assert body["status"] == "ok"
        assert body["models"] == 4
        assert body["workers"] == {"total": 2, "alive": 2, "restarts": 0}

    def test_models_match_the_directory(self, scaled_server):
        url, _ = scaled_server
        status, raw = _get(url, "/models")
        body = json.loads(raw)
        assert status == 200
        assert sorted(model["name"] for model in body["models"]) == [
            "e2e-a100", "igkw", "kw-a100", "lw-a100"]

    def test_metrics_are_aggregated_with_pool_state(self, scaled_server):
        url, _ = scaled_server
        for _ in range(3):
            _post(url, "/predict", {"model": "kw-a100",
                                    "network": "resnet50",
                                    "batch_size": 64})
        status, raw = _get(url, "/metrics")
        body = json.loads(raw)
        assert status == 200
        assert body["counters"]["requests_predict_total"] >= 3
        assert body["pool"]["workers"] == 2
        assert body["pool"]["alive"] == 2
        assert set(body["pool"]["queue_depths"]) == {"0", "1"}
        assert body["gauges"]["workers_alive"] == 2
        assert "worker_0_queue_depth" in body["gauges"]
        assert body["admission"]["shed_total"] == 0
        assert body["admission"]["max_queue_depth"] == 64
        assert body["slo"]["predict"]["target_ms"] == 50.0
        assert body["registry"]["models"] == 4

    def test_metrics_text_exposes_the_scaleout_counters(
            self, scaled_server):
        url, _ = scaled_server
        status, raw = _get(url, "/metrics?format=text")
        text = raw.decode()
        assert status == 200
        assert "repro_workers_alive 2" in text
        assert "repro_worker_0_queue_depth" in text
        assert "repro_pool_workers 2" in text
        assert "repro_worker_restarts 0" in text

    def test_calibration_without_calibrator_is_409_verbatim(
            self, scaled_server):
        url, _ = scaled_server
        status, raw = _post(url, "/feedback",
                            {"model": "kw-a100", "network": "resnet50",
                             "batch_size": 64, "measured_us": 100.0})
        assert status == 409
        assert json.loads(raw)["error"] == (
            "calibration is not enabled on this server "
            "(restart with --calibrate)")


class TestFeedbackForwarding:
    def test_worker_validates_frontend_records(self, models_dir):
        # exactly one calibrator, owned by the frontend; workers only
        # validate and replay the prediction on their hot shard
        recorded = []

        class FakeCalibrator:
            metrics = None

            def record(self, observation):
                recorded.append(observation)
                return types.SimpleNamespace(
                    n=len(recorded), ewma=0.25, ph_statistic=0.0,
                    drifted=False, triggers=())

        server = ScaledServer(models_dir, workers=2,
                              calibrator=FakeCalibrator())
        with server:
            host, port = server.httpd.server_address[:2]
            url = f"http://{host}:{port}"
            status, raw = _post(url, "/feedback", {
                "model": "kw-a100", "network": "resnet50",
                "batch_size": 64, "measured_us": 123456.0})
        body = json.loads(raw)
        assert status == 200
        assert body["recorded"] is True
        assert body["model"] == "kw-a100"
        assert body["drift"]["n"] == 1
        # the observation reached the single frontend calibrator with
        # the worker's replayed prediction attached
        assert len(recorded) == 1
        assert recorded[0].model == "kw-a100"
        assert recorded[0].measured_us == 123456.0
        assert recorded[0].predicted_us > 0


class TestCrashRecoveryOverHTTP:
    def test_killed_worker_respawns_and_serving_continues(
            self, scaled_server):
        url, server = scaled_server
        payload = {"model": "kw-a100", "network": "resnet50",
                   "batch_size": 64}
        assert _post(url, "/predict", payload)[0] == 200
        victim = server.pool.route(payload["model"], payload["network"])
        os.kill(victim.pid(), signal.SIGKILL)
        assert _wait_until(lambda: victim.restarts() >= 1)
        assert _wait_until(lambda: server.pool.alive_count() == 2)
        # the shard's keys are served again (fresh process, cold cache)
        deadline = time.monotonic() + 30
        while True:
            status, raw = _post(url, "/predict", payload)
            if status == 200 or time.monotonic() > deadline:
                break
            time.sleep(0.05)            # 503 while mid-respawn: retry
        assert status == 200
        assert json.loads(raw)["predicted_us"] > 0
        # the restart is visible to operators
        status, raw = _get(url, "/metrics")
        body = json.loads(raw)
        assert body["pool"]["restarts_total"] >= 1
        assert body["counters"]["worker_restarts_total"] >= 1
        health = json.loads(_get(url, "/healthz")[1])
        assert health["workers"]["restarts"] >= 1
