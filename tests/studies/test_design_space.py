"""Tests for the cost-aware bandwidth design-space search."""

import pytest

from repro.core import train_inter_gpu_model
from repro.gpu import gpu
from repro.studies.design_space import (
    WorkloadTarget,
    memory_cost_usd,
    search_bandwidth,
)
from repro.zoo import resnet18, resnet50


@pytest.fixture(scope="module")
def igkw(request):
    train, _ = request.getfixturevalue("small_split")
    return train_inter_gpu_model(train, [gpu("A100"), gpu("TITAN RTX")])


class TestCostModel:
    def test_affine(self):
        assert memory_cost_usd(500) == pytest.approx(2000 + 8 * 500)

    def test_monotone(self):
        assert memory_cost_usd(800) > memory_cost_usd(400)

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_cost_usd(0)


class TestSearch:
    BANDWIDTHS = (200, 400, 600, 800, 1000, 1200)

    def _loose_targets(self, igkw):
        """Targets achievable even at the lowest swept bandwidth."""
        slow = igkw.for_gpu(gpu("TITAN RTX").with_bandwidth(200))
        return [WorkloadTarget(
            resnet50(), 64,
            slow.predict_network(resnet50(), 64) / 1e3 * 1.5)]

    def _tight_targets(self, igkw, factor):
        """Targets calibrated to a mid-sweep bandwidth."""
        mid = igkw.for_gpu(gpu("TITAN RTX").with_bandwidth(800))
        return [WorkloadTarget(
            resnet50(), 64,
            mid.predict_network(resnet50(), 64) / 1e3 * factor)]

    def test_loose_target_picks_cheapest_point(self, igkw):
        result = search_bandwidth(igkw, gpu("TITAN RTX"),
                                  self._loose_targets(igkw),
                                  self.BANDWIDTHS)
        assert result.cheapest_feasible is not None
        assert result.cheapest_feasible.bandwidth_gbs == 200

    def test_tight_target_needs_more_bandwidth(self, igkw):
        result = search_bandwidth(igkw, gpu("TITAN RTX"),
                                  self._tight_targets(igkw, 1.02),
                                  self.BANDWIDTHS)
        assert result.cheapest_feasible is not None
        assert result.cheapest_feasible.bandwidth_gbs > 200

    def test_impossible_target_is_infeasible(self, igkw):
        impossible = [WorkloadTarget(resnet50(), 64, 0.001)]
        result = search_bandwidth(igkw, gpu("TITAN RTX"), impossible,
                                  self.BANDWIDTHS)
        assert result.cheapest_feasible is None
        assert not any(p.meets_all_targets for p in result.points)

    def test_multiple_workloads_binding_constraint(self, igkw):
        targets = (self._loose_targets(igkw)
                   + [WorkloadTarget(resnet18(), 64, 0.001)])
        result = search_bandwidth(igkw, gpu("TITAN RTX"), targets,
                                  self.BANDWIDTHS)
        assert result.cheapest_feasible is None

    def test_points_sorted_with_costs(self, igkw):
        result = search_bandwidth(igkw, gpu("TITAN RTX"),
                                  self._loose_targets(igkw),
                                  self.BANDWIDTHS)
        bandwidths = [p.bandwidth_gbs for p in result.points]
        costs = [p.cost_usd for p in result.points]
        assert bandwidths == sorted(bandwidths)
        assert costs == sorted(costs)

    def test_frontier_is_monotone(self, igkw):
        result = search_bandwidth(igkw, gpu("TITAN RTX"),
                                  self._loose_targets(igkw),
                                  self.BANDWIDTHS)
        frontier = result.frontier()
        assert frontier
        worst = [max(p.predicted_ms.values()) for p in frontier]
        assert worst == sorted(worst, reverse=True)

    def test_slack_sign(self, igkw):
        result = search_bandwidth(igkw, gpu("TITAN RTX"),
                                  self._loose_targets(igkw),
                                  self.BANDWIDTHS)
        targets = self._loose_targets(igkw)
        for point in result.points:
            assert point.meets_all_targets == (point.slack(targets) >= 0)

    def test_empty_targets_rejected(self, igkw):
        with pytest.raises(ValueError):
            search_bandwidth(igkw, gpu("TITAN RTX"), [], self.BANDWIDTHS)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            WorkloadTarget(resnet18(), 8, 0.0)
