"""Tests for the multi-GPU data-parallel training study."""

import pytest

from repro.sim.allreduce import ring_allreduce_cost
from repro.sim.links import Link
from repro.studies.multi_gpu import (
    bandwidth_requirement,
    data_parallel_step,
    scaling_curve,
)
from repro.zoo import resnet18, resnet50


class _StubTrainingPredictor:
    """Constant time-per-image training predictor."""

    def __init__(self, us_per_image=100.0):
        self.us_per_image = us_per_image

    def predict_network(self, network, batch_size):
        return self.us_per_image * batch_size


class TestRingAllReduce:
    def test_single_gpu_is_free(self):
        cost = ring_allreduce_cost(1e9, 1, Link(100))
        assert cost.total_us == 0.0

    def test_zero_payload_is_free(self):
        assert ring_allreduce_cost(0.0, 8, Link(100)).total_us == 0.0

    def test_traffic_formula(self):
        link = Link(bandwidth_gbs=100, latency_us=0.0)
        cost = ring_allreduce_cost(1e9, 4, link)
        # 2*(N-1)/N * P = 1.5 GB at 100 GB/s = 15 ms
        assert cost.transfer_us == pytest.approx(15_000.0)

    def test_latency_scales_with_ring_steps(self):
        link = Link(bandwidth_gbs=1e6, latency_us=5.0)
        cost = ring_allreduce_cost(1e6, 8, link)
        assert cost.latency_us == pytest.approx(2 * 7 * 5.0)

    def test_traffic_saturates_with_gpu_count(self):
        """Per-GPU traffic approaches 2P as N grows (ring property)."""
        link = Link(100, latency_us=0.0)
        t8 = ring_allreduce_cost(1e9, 8, link).transfer_us
        t64 = ring_allreduce_cost(1e9, 64, link).transfer_us
        assert t64 < 1.2 * t8

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_cost(1e9, 0, Link(100))
        with pytest.raises(ValueError):
            ring_allreduce_cost(-1.0, 2, Link(100))


class TestDataParallelStep:
    def test_single_gpu_is_pure_compute(self):
        step = data_parallel_step(_StubTrainingPredictor(), resnet18(), 32,
                                  1, Link(100))
        assert step.scaling_efficiency == pytest.approx(1.0)
        assert step.exposed_comm_us == 0.0

    def test_fast_interconnect_hides_communication(self):
        step = data_parallel_step(_StubTrainingPredictor(), resnet18(), 32,
                                  8, Link(10_000, latency_us=1.0))
        assert step.scaling_efficiency > 0.97

    def test_slow_interconnect_exposes_communication(self):
        fast = data_parallel_step(_StubTrainingPredictor(), resnet50(), 32,
                                  8, Link(300, latency_us=2.0))
        slow = data_parallel_step(_StubTrainingPredictor(), resnet50(), 32,
                                  8, Link(4, latency_us=2.0))
        assert slow.scaling_efficiency < fast.scaling_efficiency
        assert slow.step_us > fast.step_us

    def test_overlap_bounds(self):
        with pytest.raises(ValueError):
            data_parallel_step(_StubTrainingPredictor(), resnet18(), 32, 4,
                               Link(100), overlap=1.5)

    def test_throughput_accounting(self):
        step = data_parallel_step(_StubTrainingPredictor(100.0),
                                  resnet18(), 10, 4,
                                  Link(1e6, latency_us=0.0))
        # 40 images per ~1000 us step
        assert step.images_per_second == pytest.approx(
            40 / (step.step_us / 1e6))


class TestScalingCurve:
    def test_efficiency_never_increases_with_gpus(self):
        curve = scaling_curve(_StubTrainingPredictor(), resnet50(), 32,
                              [1, 2, 4, 8, 16], Link(50, latency_us=3.0))
        efficiencies = [s.scaling_efficiency for s in curve]
        assert all(b <= a + 1e-9
                   for a, b in zip(efficiencies, efficiencies[1:]))

    def test_bandwidth_requirement_monotone_logic(self):
        requirement, sweep = bandwidth_requirement(
            _StubTrainingPredictor(), resnet50(), 32, 8,
            bandwidths_gbs=[4, 16, 64, 256, 1024])
        assert requirement in (4, 16, 64, 256, 1024)
        reached = [s for s in sweep
                   if s.scaling_efficiency >= 0.95]
        assert reached
        # every bandwidth at or above the requirement meets the target
        link_of = {round(2 * 7 / 8 * resnet50().total_params() * 4
                         / (s.comm_us - 2 * 7 * 3.0) * 1e-3): s
                   for s in sweep if s.comm_us > 2 * 7 * 3.0}
        assert min(s.scaling_efficiency for s in reached) >= 0.95

    def test_requirement_inf_when_unreachable(self):
        requirement, _ = bandwidth_requirement(
            _StubTrainingPredictor(0.01), resnet50(), 1, 64,
            bandwidths_gbs=[1, 2], target_efficiency=0.999)
        assert requirement == float("inf")


class TestWithRealPredictor:
    def test_end_to_end_with_trained_model(self, small_roster):
        """A real training-mode KW model drives the study."""
        from repro import core, dataset
        from repro.gpu import gpu
        from repro.zoo import vgg16
        data = dataset.build_dataset(small_roster, [gpu("A100")],
                                     batch_sizes=[4, 16, 64],
                                     training=True)
        model = core.train_model(data, "kw", gpu="A100", batch_size=None)
        # a parameter-heavy model at a small per-GPU batch is the regime
        # where the interconnect matters (VGG-16: ~550 MB of gradients)
        nvlink = Link(300, latency_us=2.0)
        pcie = Link(16, latency_us=3.0)
        fast = data_parallel_step(model, vgg16(), 4, 8, nvlink)
        slow = data_parallel_step(model, vgg16(), 4, 8, pcie)
        assert fast.scaling_efficiency > slow.scaling_efficiency
        assert fast.scaling_efficiency > 0.8
        assert slow.scaling_efficiency < 0.9
