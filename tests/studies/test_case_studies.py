"""Tests for the three case-study drivers (Figures 15-19)."""

import pytest

from repro.core import train_inter_gpu_model, train_model
from repro.gpu import gpu
from repro.studies.bandwidth_sweep import bandwidth_sweep
from repro.studies.disaggregation import run_disaggregation_study
from repro.studies.scheduling_study import (
    measure_times,
    run_scheduling_study,
)
from repro.zoo import resnet18, resnet50


@pytest.fixture(scope="module")
def igkw(request):
    train, _ = request.getfixturevalue("small_split")
    return train_inter_gpu_model(train, [gpu("A100"), gpu("TITAN RTX")])


@pytest.fixture(scope="module")
def kw_models(request):
    # trained on every batch size: the scheduling and disaggregation
    # studies predict at batch sizes below full utilisation
    train, _ = request.getfixturevalue("small_split")
    return {name: train_model(train, "kw", gpu=name, batch_size=None)
            for name in ("A100", "TITAN RTX")}


class TestBandwidthSweep:
    def test_sweep_points_sorted_and_positive(self, igkw):
        sweep = bandwidth_sweep(igkw, resnet50(), gpu("TITAN RTX"), 64,
                                bandwidths_gbs=[800, 200, 400])
        bandwidths = [b for b, _ in sweep.points]
        assert bandwidths == [200, 400, 800]
        assert all(t > 0 for _, t in sweep.points)

    def test_more_bandwidth_never_slower(self, igkw):
        sweep = bandwidth_sweep(igkw, resnet50(), gpu("TITAN RTX"), 64)
        assert sweep.monotonic_non_increasing(tolerance=0.05)

    def test_knee_inside_sweep_range(self, igkw):
        sweep = bandwidth_sweep(igkw, resnet50(), gpu("TITAN RTX"), 64)
        knee = sweep.knee_gbs()
        assert 200 <= knee <= 1400

    def test_predicted_at_lookup(self, igkw):
        sweep = bandwidth_sweep(igkw, resnet50(), gpu("TITAN RTX"), 64,
                                bandwidths_gbs=[400, 800])
        assert sweep.predicted_at(400) > sweep.predicted_at(800)
        with pytest.raises(KeyError):
            sweep.predicted_at(999)


class TestDisaggregationStudy:
    def test_speedups_relative_to_lowest_bandwidth(self, kw_models):
        results = run_disaggregation_study(kw_models["A100"], [resnet50()],
                                           bandwidths_gbs=[16, 64, 256])
        (result,) = results
        assert result.speedup_at(16) == pytest.approx(1.0)
        assert result.speedup_at(256) >= result.speedup_at(64) >= 1.0

    def test_saturation_bandwidth_found(self, kw_models):
        results = run_disaggregation_study(kw_models["A100"], [resnet50()])
        assert results[0].saturation_gbs() in (16, 32, 64, 128, 256, 512)

    def test_unknown_bandwidth_lookup_rejected(self, kw_models):
        results = run_disaggregation_study(kw_models["A100"], [resnet18()],
                                           bandwidths_gbs=[16, 32])
        with pytest.raises(KeyError):
            results[0].speedup_at(64)


class TestSchedulingStudy:
    def test_measured_times_cover_grid(self, small_roster):
        nets = small_roster[:3]
        specs = [gpu("A100"), gpu("TITAN RTX")]
        times = measure_times(nets, specs, batch_size=16)
        assert len(times) == 6
        assert all(t > 0 for t in times.values())

    def test_full_study_outputs(self, kw_models, small_roster):
        nets = small_roster[:5]
        specs = [gpu("A100"), gpu("TITAN RTX")]
        study = run_scheduling_study(kw_models, nets, specs, batch_size=64)
        assert len(study.decisions) == 5
        assert 0.0 <= study.placement_accuracy <= 1.0
        assert study.oracle_gap >= 0.0
        assert set(study.predicted_schedule.assignment) == {
            n.name for n in nets}

    def test_predictions_pick_the_faster_gpu(self, kw_models,
                                             small_roster):
        """Figure 18: an A100 dominates a TITAN RTX, and per-GPU KW
        models must see that."""
        nets = small_roster[:4]
        specs = [gpu("A100"), gpu("TITAN RTX")]
        study = run_scheduling_study(kw_models, nets, specs, batch_size=64)
        assert study.placement_accuracy == 1.0

    def test_schedule_near_oracle(self, kw_models, small_roster):
        """Figure 19: the predicted dispatching scheme re-costed with
        measured times is within a few percent of the oracle."""
        nets = small_roster
        specs = [gpu("A100"), gpu("TITAN RTX")]
        study = run_scheduling_study(kw_models, nets, specs, batch_size=64)
        assert study.oracle_gap < 0.10
