"""Tests for the committed fleet policy-comparison study."""

import pytest

from repro.fleet import policy_names
from repro.studies.fleet_study import (
    STUDY_POLICIES,
    run_fleet_study,
    study_config,
    study_pools,
    study_table,
)


class TestStudyConfig:
    def test_scales_are_sane(self):
        small = study_config("small")
        large = study_config("large")
        assert small.total_gpus == 12
        assert large.total_gpus == 1000
        assert large.workload.n_requests == 1_000_000
        with pytest.raises(KeyError):
            study_config("galactic")

    def test_pool_mix_spans_four_types(self):
        pools = study_pools(1000)
        assert sum(pool.count for pool in pools) == 1000
        assert len({pool.gpu for pool in pools}) == 4

    def test_autoscale_opens_the_bounds(self):
        fixed = study_pools(12)
        elastic = study_pools(12, autoscale=True)
        assert all(p.min_count == p.count == p.max_count for p in fixed)
        assert all(p.max_count > p.count >= p.min_count for p in elastic)

    def test_policies_literal_matches_the_registry(self):
        # the CT010 contract enforces this statically; keep a fast
        # runtime mirror so a drift fails close to the edit
        assert sorted(STUDY_POLICIES) == policy_names()


class TestStudyRun:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fleet_study(scale="small", seed=0)

    def test_exercises_every_registered_policy(self, report):
        assert sorted(report.policies()) == policy_names()

    def test_table_prices_the_retargeted_pool(self):
        table = study_table(max_batch=4)
        # TITAN RTX was never measured by the training campaign
        idx = table.type_index("TITAN RTX")
        assert all(table.us(n, idx, 4) > 0
                   for n in range(len(table.networks)))

    def test_predicted_beats_blind_baselines(self, report):
        predicted = report.result("predicted")
        for blind in ("random", "round_robin"):
            result = report.result(blind)
            assert predicted.p99_us < result.p99_us
            assert (predicted.cost_per_1k_slo_usd
                    < result.cost_per_1k_slo_usd)

    def test_wall_clock_recorded(self, report):
        assert report.elapsed_s is not None and report.elapsed_s > 0
