"""Tests for the Section-4 observation studies (Figures 3-9)."""

import pytest

from repro.gpu import SimulatedGPU, gpu
from repro.studies.observations import (
    batch_size_series,
    classification_summary,
    e2e_linearity,
    e2e_scatter,
    efficiency_study,
    family_lines,
    layer_cloud_fits,
    layer_clouds,
    throughput_series,
)
from repro.zoo import mobilenet_v2, resnet18, resnet50, vgg16


class TestFig3Scatter:
    def test_scatter_filters_small_batches(self, small_dataset):
        points = e2e_scatter(small_dataset, "A100", min_batch=100)
        assert all(True for _ in points)   # shape check below
        # only BS 512 rows survive the filter in the small dataset
        assert len(points) == len(
            small_dataset.filter(gpu="A100", batch_size=512).network_rows)

    def test_trend_is_strongly_linear(self, small_dataset):
        """O1: execution time generally linear in FLOPs."""
        fit = e2e_linearity(small_dataset, "A100")
        assert fit.r2 > 0.5
        assert fit.slope > 0


class TestFig4FamilyLines:
    def test_families_fall_on_different_lines(self):
        """O2: VGG is more GPU-efficient than ResNet per FLOP."""
        from repro import dataset
        from repro.zoo import resnet, vgg
        nets = ([resnet([3, 4, n, 3]) for n in (4, 6, 10, 15)]
                + [vgg(c) for c in ((1, 1, 2, 2, 2), (2, 2, 3, 3, 3),
                                    (2, 2, 4, 4, 4))])
        data = dataset.build_dataset(nets, [gpu("A100")], batch_sizes=[512])
        lines = family_lines(data, "A100", 512)
        assert lines["resnet"].slope > 1.5 * lines["vgg"].slope

    def test_needs_two_networks_per_family(self, small_dataset):
        with pytest.raises(ValueError):
            family_lines(small_dataset, "A100", 512,
                         families=("alexnet",))


class TestFig5And6BatchSweeps:
    @pytest.fixture(scope="class")
    def device(self):
        return SimulatedGPU(gpu("A100"))

    def test_time_linear_in_batch(self, device):
        """O3: execution time linear in batch size, per-network slopes."""
        series = batch_size_series(device, [resnet50(), mobilenet_v2()],
                                   [16, 32, 64])
        for points in series.values():
            (b1, t1), (b2, t2), (b3, t3) = points
            # doubling batch roughly doubles time
            assert t2 / t1 == pytest.approx(2.0, rel=0.3)
            assert t3 / t2 == pytest.approx(2.0, rel=0.3)

    def test_throughput_saturates(self, device):
        """Figure 6: TFLOPS rises with batch size then flattens."""
        series = throughput_series(device, [resnet50()], [8, 64, 512])
        points = series["resnet50"]
        tflops = [t for _, t in points]
        assert tflops[0] < tflops[1]
        assert tflops[2] == pytest.approx(max(tflops), rel=0.05)


class TestFig7LayerClouds:
    def test_clouds_present_for_major_kinds(self, small_dataset):
        clouds = layer_clouds(small_dataset, "A100")
        for kind in ("BN", "CONV", "FC"):
            assert len(clouds[kind]) > 10

    def test_bn_less_efficient_than_conv(self, small_dataset):
        """O4: BN/pooling sit on steeper (less efficient) lines."""
        fits = layer_cloud_fits(small_dataset, "A100")
        assert fits["BN"].slope > fits["CONV"].slope

    def test_bn_nearly_perfectly_linear(self, small_dataset):
        fits = layer_cloud_fits(small_dataset, "A100")
        assert fits["BN"].r2 > 0.95


class TestFig8Classification:
    def test_summary_covers_all_kernels(self, small_dataset):
        rows = classification_summary(small_dataset, "A100")
        assert len(rows) == len(small_dataset.for_gpu("A100")
                                .kernel_names())
        for name, label, r2_in, r2_op, r2_out in rows:
            assert label in ("input-driven", "operation-driven",
                             "output-driven")
            assert max(r2_in, r2_op, r2_out) <= 1.0


class TestFig9Efficiency:
    def test_bandwidth_efficiency_stable_compute_not(self):
        """O6: estimated BW efficiency roughly constant across GPUs,
        compute efficiency not."""
        specs = [gpu(n) for n in ("A40", "A100", "GTX 1080 Ti",
                                  "TITAN RTX", "RTX A5000")]
        rows = efficiency_study([resnet18()], specs, batch_size=64)
        bw = [r[1] for r in rows]
        compute = [r[2] for r in rows]
        # "the bandwidth efficiency stays around 10%"
        assert all(0.05 < value < 0.16 for value in bw)
        # compute efficiency varies more than bandwidth efficiency
        assert max(compute) / min(compute) > max(bw) / min(bw)

    def test_efficiencies_are_fractions(self):
        rows = efficiency_study([resnet18()], [gpu("A100")], batch_size=64)
        for _, bw_eff, compute_eff in rows:
            assert 0 < bw_eff < 1
            assert 0 < compute_eff < 1
