"""Tests for the disaggregated-memory system simulation."""

import pytest

from repro.sim.disaggregated import (
    DisaggregatedSystem,
    LayerTask,
    layer_tasks,
    speedup_curve,
)
from repro.sim.links import Link


def tasks_uniform(n, compute_us=100.0, param_bytes=1e6):
    return [LayerTask(f"l{i}", compute_us, param_bytes) for i in range(n)]


class TestLayerTask:
    def test_fetch_bytes_sums_params_and_spill(self):
        task = LayerTask("l", 1.0, 100.0, 50.0)
        assert task.fetch_bytes == 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerTask("l", -1.0, 0.0)
        with pytest.raises(ValueError):
            LayerTask("l", 1.0, -2.0)


class TestDisaggregatedSystem:
    def test_infinite_bandwidth_approaches_pure_compute(self):
        tasks = tasks_uniform(10)
        system = DisaggregatedSystem(Link(1e6, latency_us=0.0), 4)
        result = system.run(tasks)
        assert result.makespan_us == pytest.approx(1000.0, rel=0.01)
        assert result.stall_us == pytest.approx(0.0, abs=1.0)
        assert result.efficiency == pytest.approx(1.0, abs=0.01)

    def test_slow_link_bounded_by_transfer_time(self):
        tasks = tasks_uniform(10, compute_us=1.0, param_bytes=1e9)
        system = DisaggregatedSystem(Link(1.0, latency_us=0.0), 4)
        result = system.run(tasks)
        # 10 GB over a 1 GB/s link = 10 s minimum
        assert result.makespan_us >= 10e6

    def test_makespan_monotone_in_bandwidth(self):
        tasks = tasks_uniform(20, compute_us=50.0, param_bytes=5e6)
        times = [DisaggregatedSystem(Link(bw, 2.0), 4).run(tasks).makespan_us
                 for bw in (1, 10, 100)]
        assert times[0] > times[1] >= times[2]

    def test_wider_window_never_hurts(self):
        tasks = [LayerTask(f"l{i}", 10.0, (5e6 if i % 5 == 0 else 1e3))
                 for i in range(30)]
        narrow = DisaggregatedSystem(Link(1.0, 2.0), 1).run(tasks)
        wide = DisaggregatedSystem(Link(1.0, 2.0), 8).run(tasks)
        assert wide.makespan_us <= narrow.makespan_us + 1e-6

    def test_zero_byte_layers_never_block(self):
        tasks = [LayerTask("a", 10.0, 0.0), LayerTask("b", 10.0, 0.0)]
        result = DisaggregatedSystem(Link(1.0, 100.0), 1).run(tasks)
        assert result.makespan_us == pytest.approx(20.0)
        assert result.transfers == 0

    def test_accounting_consistency(self):
        tasks = tasks_uniform(10)
        result = DisaggregatedSystem(Link(10, 2.0), 2).run(tasks)
        assert result.compute_us == pytest.approx(1000.0)
        assert result.makespan_us == pytest.approx(
            result.compute_us + result.stall_us)
        assert result.transfers == 10
        assert result.bytes_moved == pytest.approx(10e6)

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError):
            DisaggregatedSystem(Link(1.0), 2).run([])

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            DisaggregatedSystem(Link(1.0), 0)


class TestSpeedupCurve:
    def test_baseline_is_one(self):
        tasks = tasks_uniform(10, compute_us=10.0, param_bytes=1e7)
        curve = speedup_curve(tasks, [16, 64, 256], baseline_gbs=16)
        assert curve[0][1] == pytest.approx(1.0)

    def test_speedups_monotone(self):
        tasks = tasks_uniform(10, compute_us=10.0, param_bytes=1e7)
        curve = speedup_curve(tasks, [16, 64, 256], baseline_gbs=16)
        speedups = [s for _, s in curve]
        assert speedups == sorted(speedups)


class TestLayerTasksFromPredictor:
    class _StubPredictor:
        def predict_layer(self, info):
            return 7.0

    def test_tasks_match_network(self, small_roster):
        net = small_roster[0]
        tasks = layer_tasks(self._StubPredictor(), net, 4)
        assert len(tasks) == len(net)
        assert all(t.compute_us == 7.0 for t in tasks)

    def test_param_bytes_are_fp32(self, small_roster):
        net = small_roster[0]
        tasks = layer_tasks(self._StubPredictor(), net, 4)
        assert sum(t.param_bytes for t in tasks) == 4 * net.total_params()

    def test_activation_budget_adds_spill(self, small_roster):
        net = small_roster[0]
        without = layer_tasks(self._StubPredictor(), net, 32)
        with_budget = layer_tasks(self._StubPredictor(), net, 32,
                                  activation_budget_bytes=1e6)
        assert (sum(t.spill_bytes for t in with_budget)
                > sum(t.spill_bytes for t in without) == 0)

    def test_negative_predictions_clamped(self, small_roster):
        class Negative:
            def predict_layer(self, info):
                return -5.0
        tasks = layer_tasks(Negative(), small_roster[0], 2)
        assert all(t.compute_us == 0.0 for t in tasks)
