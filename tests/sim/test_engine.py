"""Tests for the event-driven simulation engine."""

import pytest

from repro.sim.engine import EventEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule(5.0, lambda e: fired.append("late"))
        engine.schedule(1.0, lambda e: fired.append("early"))
        engine.run()
        assert fired == ["early", "late"]

    def test_fifo_tie_break(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append("first"))
        engine.schedule(1.0, lambda e: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_handlers_schedule_more_events(self):
        engine = EventEngine()
        fired = []

        def chain(e):
            fired.append(e.now)
            if len(fired) < 3:
                e.schedule(10.0, chain)

        engine.schedule(0.0, chain)
        end = engine.run()
        assert fired == [0.0, 10.0, 20.0]
        assert end == 20.0

    def test_now_advances(self):
        engine = EventEngine()
        times = []
        engine.schedule(3.0, lambda e: times.append(e.now))
        engine.schedule(7.0, lambda e: times.append(e.now))
        engine.run()
        assert times == [3.0, 7.0]

    def test_schedule_at_absolute_time(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(4.0, lambda e: fired.append(e.now))
        engine.run()
        assert fired == [4.0]

    def test_rejects_past_events(self):
        engine = EventEngine()
        engine.schedule(5.0, lambda e: e.schedule(-1.0, lambda _: None))
        with pytest.raises(ValueError):
            engine.run()

    def test_rejects_past_absolute_time(self):
        engine = EventEngine()

        def late(e):
            e.schedule_at(1.0, lambda _: None)

        engine.schedule(5.0, late)
        with pytest.raises(ValueError):
            engine.run()

    def test_run_until_horizon(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append(1))
        engine.schedule(100.0, lambda e: fired.append(2))
        end = engine.run(until_us=50.0)
        assert fired == [1]
        assert end == 50.0
        assert bool(engine)   # the late event is still pending

    def test_run_until_rejects_time_travel(self):
        engine = EventEngine()
        engine.schedule(10.0, lambda e: None)
        engine.run(until_us=20.0)
        with pytest.raises(ValueError):
            engine.run(until_us=5.0)

    def test_run_until_advances_empty_queue_to_horizon(self):
        engine = EventEngine()
        end = engine.run(until_us=42.0)
        assert end == 42.0
        assert engine.now == 42.0

    def test_run_until_now_is_a_noop(self):
        engine = EventEngine()
        engine.run(until_us=7.0)
        assert engine.run(until_us=7.0) == 7.0
        assert engine.now == 7.0

    def test_monotone_slices_advance_the_clock(self):
        # the fleet drives the engine in one run() slice per arrival;
        # every slice must land exactly on its horizon even when no
        # event falls inside it
        engine = EventEngine()
        fired = []
        engine.schedule(15.0, lambda e: fired.append(e.now))
        for horizon in (5.0, 10.0, 20.0, 30.0):
            assert engine.run(until_us=horizon) == horizon
        assert fired == [15.0]

    def test_events_processed_counter(self):
        engine = EventEngine()
        for _ in range(5):
            engine.schedule(1.0, lambda e: None)
        engine.run()
        assert engine.events_processed == 5

    def test_empty_run_returns_zero(self):
        assert EventEngine().run() == 0.0
