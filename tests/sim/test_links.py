"""Tests for the network link model."""

import pytest

from repro.sim.links import Link


class TestTransferTime:
    def test_bandwidth_component(self):
        link = Link(bandwidth_gbs=10, latency_us=0.0)
        # 10 GB at 10 GB/s = 1 s = 1e6 us
        assert link.transfer_time_us(10e9) == pytest.approx(1e6)

    def test_latency_component(self):
        link = Link(bandwidth_gbs=100, latency_us=5.0)
        assert link.transfer_time_us(0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Link(bandwidth_gbs=0)
        with pytest.raises(ValueError):
            Link(bandwidth_gbs=10, latency_us=-1)


class TestFifoSerialisation:
    def test_back_to_back_transfers_queue(self):
        link = Link(bandwidth_gbs=1, latency_us=0.0)
        first = link.transfer(1e9, request_time_us=0.0)    # 1 s
        second = link.transfer(1e9, request_time_us=0.0)   # queued behind
        assert first == pytest.approx(1e6)
        assert second == pytest.approx(2e6)

    def test_idle_link_starts_at_request(self):
        link = Link(bandwidth_gbs=1, latency_us=0.0)
        link.transfer(1e9, 0.0)
        finish = link.transfer(1e9, 5e6)   # requested after the link idled
        assert finish == pytest.approx(6e6)

    def test_counters(self):
        link = Link(bandwidth_gbs=1)
        link.transfer(100.0, 0.0)
        link.transfer(200.0, 0.0)
        assert link.transfers == 2
        assert link.bytes_moved == 300.0

    def test_reset(self):
        link = Link(bandwidth_gbs=1)
        link.transfer(100.0, 0.0)
        link.reset()
        assert link.busy_until_us == 0.0
        assert link.transfers == 0
        assert link.bytes_moved == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Link(bandwidth_gbs=1).transfer(-1.0, 0.0)
