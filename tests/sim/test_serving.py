"""Tests for the inference-serving simulator."""

import pytest

from repro.sim.serving import (
    ServingSimulator,
    latency_throughput_curve,
    poisson_arrivals,
)
from repro.zoo import resnet18


class _LinearPredictor:
    """Stub: fixed cost + per-image cost, in microseconds."""

    def __init__(self, base_us=1000.0, per_image_us=100.0):
        self.base_us = base_us
        self.per_image_us = per_image_us

    def predict_network(self, network, batch_size):
        return self.base_us + self.per_image_us * batch_size


class _Plan:
    """Stub compiled plan with a fixed evaluation result."""

    def __init__(self, time_us):
        self.time_us = time_us
        self.evaluations = 0

    def evaluate(self):
        self.evaluations += 1
        return self.time_us


class _CompilingPredictor(_LinearPredictor):
    """Stub with the compile/evaluate split; counts lowerings."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.compiles = 0

    def compile(self, network, batch_size):
        self.compiles += 1
        return _Plan(self.predict_network(network, batch_size))


class TestCompileOncePlans:
    def test_compile_preferred_over_predict_network(self):
        predictor = _CompilingPredictor(0.0, 1000.0)
        simulator = ServingSimulator(predictor, resnet18(), max_batch=1,
                                     batch_timeout_us=0.0)
        result = simulator.run([0.0, 0.0])
        assert predictor.compiles == 1
        assert result.makespan_us == pytest.approx(2000.0)

    def test_one_lowering_per_batch_size(self):
        predictor = _CompilingPredictor()
        simulator = ServingSimulator(predictor, resnet18(), max_batch=4,
                                     batch_timeout_us=0.0)
        simulator.run(poisson_arrivals(2000, 100, seed=3))
        batch_sizes_used = len(simulator._batch_time)
        assert predictor.compiles == batch_sizes_used

    def test_shared_plan_cache_across_simulators(self):
        predictor = _CompilingPredictor()
        cache = {}
        for _ in range(3):
            simulator = ServingSimulator(predictor, resnet18(),
                                         max_batch=1,
                                         batch_timeout_us=0.0,
                                         plan_cache=cache)
            simulator.run([0.0])
        # the network was lowered once fleet-wide, not once per server
        assert predictor.compiles == 1
        assert set(cache) == {(resnet18().name, 1)}


class TestPoissonArrivals:
    def test_count_and_monotonicity(self):
        arrivals = poisson_arrivals(100.0, 50, seed=1)
        assert len(arrivals) == 50
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_rate_roughly_respected(self):
        arrivals = poisson_arrivals(1000.0, 2000, seed=2)
        measured_rate = len(arrivals) / (arrivals[-1] / 1e6)
        assert measured_rate == pytest.approx(1000.0, rel=0.15)

    def test_deterministic_per_seed(self):
        assert poisson_arrivals(10, 5, seed=3) == poisson_arrivals(
            10, 5, seed=3)
        assert poisson_arrivals(10, 5, seed=3) != poisson_arrivals(
            10, 5, seed=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 5)
        with pytest.raises(ValueError):
            poisson_arrivals(10.0, 0)


class TestServingSimulator:
    def test_all_requests_served(self):
        simulator = ServingSimulator(_LinearPredictor(), resnet18(),
                                     max_batch=8)
        result = simulator.run(poisson_arrivals(500, 100, seed=1))
        assert len(result.requests) == 100

    def test_latency_includes_queueing(self):
        simulator = ServingSimulator(_LinearPredictor(), resnet18(),
                                     max_batch=4, batch_timeout_us=0.0)
        result = simulator.run([0.0, 1.0, 2.0, 3.0])
        for request in result.requests:
            assert request.latency_us >= request.queue_us
            assert request.finish_us > request.arrival_us

    def test_immediate_launch_without_timeout(self):
        """timeout 0: the first request launches a batch of one."""
        simulator = ServingSimulator(_LinearPredictor(), resnet18(),
                                     max_batch=32, batch_timeout_us=0.0)
        result = simulator.run([0.0])
        (request,) = result.requests
        assert request.batch_size == 1
        assert request.queue_us == pytest.approx(0.0)

    def test_batching_under_burst(self):
        """A burst arriving together shares batches up to max_batch."""
        simulator = ServingSimulator(_LinearPredictor(), resnet18(),
                                     max_batch=8, batch_timeout_us=100.0)
        result = simulator.run([0.0] * 16)
        assert result.mean_batch_size > 4
        assert result.batches <= 4

    def test_max_batch_respected(self):
        simulator = ServingSimulator(_LinearPredictor(), resnet18(),
                                     max_batch=4)
        result = simulator.run([0.0] * 12)
        assert all(r.batch_size <= 4 for r in result.requests)

    def test_batch_timeout_waits_for_work(self):
        """With a long timeout, two spaced requests share one batch."""
        simulator = ServingSimulator(_LinearPredictor(), resnet18(),
                                     max_batch=8, batch_timeout_us=5000.0)
        result = simulator.run([0.0, 1000.0])
        assert result.batches == 1
        assert all(r.batch_size == 2 for r in result.requests)

    def test_throughput_accounting(self):
        simulator = ServingSimulator(_LinearPredictor(0.0, 1000.0),
                                     resnet18(), max_batch=1,
                                     batch_timeout_us=0.0)
        result = simulator.run([0.0, 0.0, 0.0, 0.0])
        # four serial 1000us batches
        assert result.makespan_us == pytest.approx(4000.0)
        assert result.throughput_rps == pytest.approx(1000.0)

    def test_percentiles_ordered(self):
        simulator = ServingSimulator(_LinearPredictor(), resnet18(),
                                     max_batch=8)
        result = simulator.run(poisson_arrivals(2000, 200, seed=5))
        p50 = result.latency_percentile_us(50)
        p99 = result.latency_percentile_us(99)
        assert p50 <= p99

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingSimulator(_LinearPredictor(), resnet18(), max_batch=0)
        with pytest.raises(ValueError):
            ServingSimulator(_LinearPredictor(), resnet18(),
                             batch_timeout_us=-1.0)
        simulator = ServingSimulator(_LinearPredictor(), resnet18())
        with pytest.raises(ValueError):
            simulator.run([])


class TestLatencyThroughputCurve:
    def test_latency_grows_with_load(self):
        """The textbook hockey stick: latency explodes near saturation."""
        curve = latency_throughput_curve(
            _LinearPredictor(1000.0, 100.0), resnet18(),
            rates_rps=[100, 2000, 8000], n_requests=300, max_batch=16,
            batch_timeout_us=500.0)
        latencies = [result.mean_latency_us for _, result in curve]
        assert latencies[0] < latencies[-1]

    def test_batching_kicks_in_under_load(self):
        curve = latency_throughput_curve(
            _LinearPredictor(1000.0, 100.0), resnet18(),
            rates_rps=[50, 8000], n_requests=300, max_batch=16)
        light, heavy = curve[0][1], curve[1][1]
        assert heavy.mean_batch_size > light.mean_batch_size
