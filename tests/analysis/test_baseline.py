"""Baseline workflow: pinning accepted debt, blocking only on new debt."""

import json

from repro.analysis_checks import Finding, Severity
from repro.analysis_checks.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    baseline_key,
    load_baseline,
    normalize_path,
    repo_root,
    save_baseline,
)


def finding(path="src/repro/x.py", line=10, rule="UN001", message="mix"):
    return Finding(path, line, 0, rule, Severity.ERROR, message)


class TestKeys:
    def test_key_ignores_line_numbers(self):
        assert baseline_key(finding(line=10)) == baseline_key(
            finding(line=99))

    def test_key_distinguishes_rule_and_message(self):
        assert baseline_key(finding(rule="UN001")) != baseline_key(
            finding(rule="RC100"))
        assert baseline_key(finding(message="a")) != baseline_key(
            finding(message="b"))

    def test_paths_normalize_repo_relative(self):
        absolute = str(repo_root() / "src" / "repro" / "cli.py")
        assert normalize_path(absolute) == "src/repro/cli.py"
        assert normalize_path("src/repro/cli.py") == "src/repro/cli.py"


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        target = tmp_path / "baseline.json"
        found = [finding(), finding(), finding(rule="DC001")]
        save_baseline(found, target)
        loaded = load_baseline(target)
        assert loaded[baseline_key(finding())] == 2
        assert loaded[baseline_key(finding(rule="DC001"))] == 1

    def test_save_is_deterministic(self, tmp_path):
        found = [finding(message="b"), finding(message="a")]
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_baseline(found, first)
        save_baseline(list(reversed(found)), second)
        assert first.read_bytes() == second.read_bytes()

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}


class TestApply:
    def test_baselined_findings_are_subtracted(self):
        baseline = {baseline_key(finding()): 1}
        fresh, suppressed = apply_baseline([finding()], baseline)
        assert fresh == [] and suppressed == 1

    def test_new_findings_pass_through(self):
        baseline = {baseline_key(finding()): 1}
        new = finding(message="different")
        fresh, suppressed = apply_baseline([finding(), new], baseline)
        assert fresh == [new] and suppressed == 1

    def test_counts_cap_how_many_suppress(self):
        baseline = {baseline_key(finding()): 1}
        fresh, suppressed = apply_baseline(
            [finding(line=1), finding(line=2)], baseline)
        assert len(fresh) == 1 and suppressed == 1

    def test_line_drift_still_suppressed(self):
        baseline = {baseline_key(finding(line=10)): 1}
        fresh, _ = apply_baseline([finding(line=42)], baseline)
        assert fresh == []


class TestCommittedBaseline:
    def test_committed_baseline_is_pinned_byte_for_byte(self):
        """The repo ships with zero accepted debt; growing this file is
        a reviewed decision, so the exact bytes are pinned here."""
        expected = json.dumps(
            {"format_version": 1, "entries": {}}, indent=2) + "\n"
        assert DEFAULT_BASELINE.read_text(encoding="utf-8") == expected

    def test_committed_baseline_lives_inside_the_package(self):
        assert DEFAULT_BASELINE.parent.name == "analysis_checks"
