"""UN001: trigger/suppress fixture pairs for the unit-dimension checker."""

import textwrap

import pytest

from repro.analysis_checks import Severity
from repro.analysis_checks.index import run_program_checks
from repro.analysis_checks.units import compatible, suffix_unit


def un001(tmp_path, **modules):
    """Run UN001 over ``modules`` written as pkg/<name>.py."""
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    init = root / "__init__.py"
    if not init.exists():
        init.write_text("")
    for name, source in modules.items():
        (root / f"{name}.py").write_text(textwrap.dedent(source))
    findings, _, _ = run_program_checks([root], only=["UN001"])
    return findings


class TestSuffixInference:
    def test_known_suffixes(self):
        assert suffix_unit("latency_ms") == "ms"
        assert suffix_unit("deadline_us") == "us"
        assert suffix_unit("bandwidth_gbs") == "GB/s"
        assert suffix_unit("bandwidth_gbps") == "GB/s"
        assert suffix_unit("cost_usd") == "USD"
        assert suffix_unit("rate_rps") == "rps"

    def test_non_units(self):
        assert suffix_unit("latency") is None
        assert suffix_unit("_us") is None          # private name, no stem
        assert suffix_unit("focus") is None        # no underscore

    def test_clock_flavours_compatible_with_plain_seconds(self):
        assert compatible("s", "s-wall")
        assert compatible("s", "s-mono")
        assert not compatible("s-wall", "s-mono")


class TestArithmeticAndCompare:
    def test_add_mix_flagged(self, tmp_path):
        (finding,) = un001(tmp_path, a="""\
            def f(slo_ms, slo_us):
                return slo_ms + slo_us
            """)
        assert finding.rule == "UN001"
        assert finding.severity is Severity.ERROR
        assert "[ms]" in finding.message and "[us]" in finding.message

    def test_same_unit_add_is_clean(self, tmp_path):
        assert un001(tmp_path, a="""\
            def f(a_us, b_us):
                return a_us + b_us
            """) == []

    def test_compare_mix_flagged(self, tmp_path):
        (finding,) = un001(tmp_path, a="""\
            def f(deadline_ms, now_us):
                return now_us > deadline_ms
            """)
        assert "comparison" in finding.message

    def test_augassign_mix_flagged(self, tmp_path):
        (finding,) = un001(tmp_path, a="""\
            def f(total_us, extra_ms):
                total_us += extra_ms
                return total_us
            """)
        assert "+=" in finding.message

    def test_conversion_by_constant_is_clean(self, tmp_path):
        assert un001(tmp_path, a="""\
            def f(slo_us):
                slo_ms = slo_us / 1e3
                back_us = slo_ms * 1000
                return slo_ms, back_us
            """) == []

    def test_derived_dimension_product_is_clean(self, tmp_path):
        # $/hour x run time is a derived quantity, not a mix
        assert un001(tmp_path, a="""\
            def f(rate_usd, run_us):
                return rate_usd * run_us
            """) == []


class TestAssignAndReturn:
    def test_assign_mix_flagged(self, tmp_path):
        (finding,) = un001(tmp_path, a="""\
            def f(latency_us):
                latency_ms = latency_us
                return latency_ms
            """)
        assert "without an explicit conversion" in finding.message

    def test_return_mismatch_flagged(self, tmp_path):
        (finding,) = un001(tmp_path, a="""\
            def percentile_us(latency_ms):
                return latency_ms
            """)
        assert "named [us]" in finding.message

    def test_converted_return_is_clean(self, tmp_path):
        assert un001(tmp_path, a="""\
            def percentile_us(latency_ms):
                return latency_ms * 1e3
            """) == []


class TestCallArguments:
    def test_keyword_argument_mix_flagged(self, tmp_path):
        (finding,) = un001(tmp_path, a="""\
            def run(until_us=None):
                return until_us


            def main(deadline_ms):
                return run(until_us=deadline_ms)
            """)
        assert "until_us=" in finding.message

    def test_cross_module_positional_mix_flagged(self, tmp_path):
        """The case a per-file linter cannot see: caller and callee two
        modules apart, argument bound by position."""
        findings = un001(
            tmp_path,
            engine="""\
                def wait(until_us):
                    return until_us
                """,
            caller="""\
                from pkg.engine import wait


                def main(deadline_ms):
                    return wait(deadline_ms)
                """)
        (finding,) = findings
        assert finding.path.endswith("caller.py")
        assert "until_us" in finding.message
        assert "[ms]" in finding.message

    def test_cross_module_same_unit_is_clean(self, tmp_path):
        assert un001(
            tmp_path,
            engine2="""\
                def wait(until_us):
                    return until_us
                """,
            caller2="""\
                from pkg.engine2 import wait


                def main(deadline_us):
                    return wait(deadline_us)
                """) == []

    def test_callee_name_suffix_propagates(self, tmp_path):
        (finding,) = un001(tmp_path, a="""\
            def percentile_us(values):
                return sorted(values)[0]


            def report(values):
                latency_ms = percentile_us(values)
                return latency_ms
            """)
        assert "[us]" in finding.message


class TestClockFlavours:
    def test_wall_minus_monotonic_flagged(self, tmp_path):
        (finding,) = un001(tmp_path, a="""\
            import time


            def elapsed():
                start_s = time.time()
                return time.monotonic() - start_s
            """)
        assert "s-mono" in finding.message
        assert "s-wall" in finding.message

    def test_matching_clock_is_clean(self, tmp_path):
        assert un001(tmp_path, a="""\
            import time


            def elapsed():
                start = time.perf_counter()
                return time.perf_counter() - start
            """) == []


class TestSuppression:
    def test_noqa_silences_the_line(self, tmp_path):
        assert un001(tmp_path, a="""\
            def f(slo_ms, slo_us):
                return slo_ms + slo_us  # repro: noqa[UN001]
            """) == []

    def test_transparent_builtins_propagate_units(self, tmp_path):
        (finding,) = un001(tmp_path, a="""\
            def f(times_us, budget_ms):
                return max(times_us) - budget_ms
            """)
        assert "[us]" in finding.message and "[ms]" in finding.message

    def test_subscript_sees_through_to_sequence_unit(self, tmp_path):
        (finding,) = un001(tmp_path, a="""\
            def f(times_us, cut_ms):
                return times_us[0] < cut_ms
            """)
        assert "comparison" in finding.message


@pytest.mark.parametrize("snippet", [
    "def f(a_us, b_us):\n    return a_us - b_us\n",
    "def f(n, k):\n    return n + k\n",
    "def f(size_gb, bw_gbs):\n    return size_gb / bw_gbs\n",
    "def f(x_ms):\n    y_ms = x_ms\n    return y_ms\n",
])
def test_clean_snippets_produce_no_findings(tmp_path, snippet):
    assert un001(tmp_path, clean=snippet) == []
