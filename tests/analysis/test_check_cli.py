"""``repro check``: the CLI gate the CI workflow runs."""

import json

import pytest

from repro.cli import main

CLEAN = "def predict(x):\n    return x * 2\n"
VIOLATIONS = (
    "def accumulate(x, acc=[]):\n"          # MD001 (error)
    "    assert isinstance(x, int)\n"        # AS001 (error)
    "    if x == 0.5:\n"                     # FP001 (warning)
    "        acc.append(x)\n"
    "    return acc\n"
)


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    return path


@pytest.fixture()
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(VIOLATIONS)
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        code = main(["check", "--no-contracts",
                     "--paths", str(clean_file)])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_exits_nonzero(self, dirty_file, capsys):
        code = main(["check", "--no-contracts",
                     "--paths", str(dirty_file)])
        assert code == 1
        out = capsys.readouterr().out
        assert "MD001" in out and "AS001" in out and "FP001" in out

    def test_warnings_alone_pass_unless_strict(self, tmp_path):
        path = tmp_path / "warn.py"
        path.write_text("ok = x == 0.5\n")
        args = ["check", "--no-contracts", "--paths", str(path)]
        assert main(args) == 0
        assert main(args + ["--strict"]) == 1

    def test_repo_tree_is_clean(self):
        """The shipped package passes its own gate (the CI invariant)."""
        assert main(["check", "--no-contracts"]) == 0

    def test_contracts_only_run_is_clean(self, capsys):
        code = main(["check", "--no-lint", "--network", "alexnet"])
        assert code == 0
        assert "contracts over 1 network(s)" in capsys.readouterr().out


class TestOptions:
    def test_json_format_parses(self, dirty_file, capsys):
        main(["check", "--no-contracts", "--format", "json",
              "--paths", str(dirty_file)])
        document = json.loads(capsys.readouterr().out)
        rules = {entry["rule"] for entry in document["findings"]}
        assert {"MD001", "AS001", "FP001"} <= rules
        assert document["counts"]["error"] == 2

    def test_rules_filter_limits_findings(self, dirty_file, capsys):
        code = main(["check", "--no-contracts", "--rules", "FP001",
                     "--paths", str(dirty_file)])
        assert code == 0           # FP001 is warning severity
        out = capsys.readouterr().out
        assert "FP001" in out and "MD001" not in out

    def test_unknown_rule_is_a_usage_error(self, dirty_file, capsys):
        code = main(["check", "--no-contracts", "--rules", "ZZ999",
                     "--paths", str(dirty_file)])
        assert code == 2
        assert "unknown rule 'ZZ999'" in capsys.readouterr().err

    def test_test_files_are_not_linted(self, tmp_path, capsys):
        (tmp_path / "test_dirty.py").write_text(VIOLATIONS)
        code = main(["check", "--no-contracts", "--paths", str(tmp_path)])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out
