"""``repro check``: the CLI gate the CI workflow runs."""

import json

import pytest

from repro.cli import main

CLEAN = "def predict(x):\n    return x * 2\n"
VIOLATIONS = (
    "def accumulate(x, acc=[]):\n"          # MD001 (error)
    "    assert isinstance(x, int)\n"        # AS001 (error)
    "    if x == 0.5:\n"                     # FP001 (warning)
    "        acc.append(x)\n"
    "    return acc\n"
)


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    return path


@pytest.fixture()
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(VIOLATIONS)
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        code = main(["check", "--no-contracts",
                     "--paths", str(clean_file)])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_exits_nonzero(self, dirty_file, capsys):
        code = main(["check", "--no-contracts",
                     "--paths", str(dirty_file)])
        assert code == 1
        out = capsys.readouterr().out
        assert "MD001" in out and "AS001" in out and "FP001" in out

    def test_warnings_alone_pass_unless_strict(self, tmp_path):
        path = tmp_path / "warn.py"
        path.write_text("ok = x == 0.5\n")
        args = ["check", "--no-contracts", "--paths", str(path)]
        assert main(args) == 0
        assert main(args + ["--strict"]) == 1

    def test_repo_tree_is_clean(self):
        """The shipped package passes its own gate (the CI invariant)."""
        assert main(["check", "--no-contracts"]) == 0

    def test_contracts_only_run_is_clean(self, capsys):
        code = main(["check", "--no-lint", "--network", "alexnet"])
        assert code == 0
        assert "contracts over 1 network(s)" in capsys.readouterr().out


class TestOptions:
    def test_json_format_parses(self, dirty_file, capsys):
        main(["check", "--no-contracts", "--format", "json",
              "--paths", str(dirty_file)])
        document = json.loads(capsys.readouterr().out)
        rules = {entry["rule"] for entry in document["findings"]}
        assert {"MD001", "AS001", "FP001"} <= rules
        assert document["counts"]["error"] == 2

    def test_rules_filter_limits_findings(self, dirty_file, capsys):
        code = main(["check", "--no-contracts", "--rules", "FP001",
                     "--paths", str(dirty_file)])
        assert code == 0           # FP001 is warning severity
        out = capsys.readouterr().out
        assert "FP001" in out and "MD001" not in out

    def test_unknown_rule_is_a_usage_error(self, dirty_file, capsys):
        code = main(["check", "--no-contracts", "--rules", "ZZ999",
                     "--paths", str(dirty_file)])
        assert code == 2
        assert "unknown rule 'ZZ999'" in capsys.readouterr().err

    def test_test_files_are_not_linted(self, tmp_path, capsys):
        (tmp_path / "test_dirty.py").write_text(VIOLATIONS)
        code = main(["check", "--no-contracts", "--paths", str(tmp_path)])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_include_tests_lints_pytest_files(self, tmp_path, capsys):
        (tmp_path / "test_dirty.py").write_text(VIOLATIONS)
        code = main(["check", "--no-contracts", "--include-tests",
                     "--paths", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        # MD001 fires; AS001 is scoped away from pytest-style files
        assert "MD001" in out and "AS001" not in out


UNIT_BUG_ENGINE = (
    "def wait(until_us):\n"
    "    return until_us\n"
)
UNIT_BUG_CALLER = (
    "from pkg.engine import wait\n"
    "\n"
    "\n"
    "def main(deadline_ms):\n"
    "    return wait(deadline_ms)\n"
)
RACE_CLASS = (
    "import threading\n"
    "\n"
    "\n"
    "class Store:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._hits = 0\n"
    "\n"
    "    def record(self):\n"
    "        with self._lock:\n"
    "            self._hits += 1\n"
    "\n"
    "    def reset(self):\n"
    "        self._hits = 0\n"       # RC001 and RC100 both see this
    "\n"
    "    def hits(self):\n"
    "        return self._hits\n"    # only RC100 sees this read
)


@pytest.fixture()
def unit_bug_pkg(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "engine.py").write_text(UNIT_BUG_ENGINE)
    (pkg / "caller.py").write_text(UNIT_BUG_CALLER)
    return pkg


class TestProgramAnalyzers:
    def test_cross_module_unit_bug_blocks(self, unit_bug_pkg, capsys):
        code = main(["check", "--no-contracts", "--no-baseline",
                     "--paths", str(unit_bug_pkg)])
        assert code == 1
        assert "UN001" in capsys.readouterr().out

    def test_only_restricts_to_named_rules(self, unit_bug_pkg, capsys):
        code = main(["check", "--only", "RC100",
                     "--paths", str(unit_bug_pkg)])
        assert code == 0
        assert "UN001" not in capsys.readouterr().out

    def test_only_unknown_rule_is_a_usage_error(self, capsys):
        code = main(["check", "--only", "XX000"])
        assert code == 2
        assert "unknown rule 'XX000'" in capsys.readouterr().err

    def test_no_program_skips_analyzers(self, unit_bug_pkg, capsys):
        code = main(["check", "--no-contracts", "--no-program",
                     "--paths", str(unit_bug_pkg)])
        assert code == 0

    def test_rc100_supersedes_rc001(self, tmp_path, capsys):
        path = tmp_path / "store.py"
        path.write_text(RACE_CLASS)
        code = main(["check", "--no-contracts", "--no-baseline",
                     "--paths", str(path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "RC100" in out and "RC001" not in out

    def test_index_stats_reported(self, unit_bug_pkg, capsys):
        main(["check", "--no-contracts", "--index-stats", "--format",
              "json", "--paths", str(unit_bug_pkg)])
        document = json.loads(capsys.readouterr().out)
        assert document["index"]["modules"] == 3
        assert document["index"]["resolved_calls"] >= 1


class TestBaselineWorkflow:
    def test_update_then_check_suppresses(self, unit_bug_pkg, tmp_path,
                                          capsys):
        baseline = tmp_path / "baseline.json"
        args = ["check", "--no-contracts", "--paths", str(unit_bug_pkg),
                "--baseline", str(baseline)]
        assert main(args + ["--update-baseline"]) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "baselined finding(s) suppressed" in \
            capsys.readouterr().out
        # the same findings still block when the baseline is ignored
        assert main(["check", "--no-contracts", "--no-baseline",
                     "--paths", str(unit_bug_pkg)]) == 1

    def test_new_finding_blocks_despite_baseline(self, unit_bug_pkg,
                                                 tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = ["check", "--no-contracts", "--paths", str(unit_bug_pkg),
                "--baseline", str(baseline)]
        assert main(args + ["--update-baseline"]) == 0
        (unit_bug_pkg / "fresh.py").write_text(
            "from pkg.engine import wait\n"
            "\n"
            "\n"
            "def go(cutoff_ms):\n"
            "    return wait(cutoff_ms)\n")
        capsys.readouterr()
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out


class TestSarif:
    def test_sarif_document_shape(self, unit_bug_pkg, capsys):
        main(["check", "--no-contracts", "--no-baseline", "--format",
              "sarif", "--paths", str(unit_bug_pkg)])
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "repro-check"
        result = run["results"][0]
        assert result["ruleId"] == "UN001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1

    def test_clean_tree_sarif_has_no_results(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        main(["check", "--no-contracts", "--format", "sarif",
              "--paths", str(path)])
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"] == []
