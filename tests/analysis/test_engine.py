"""Engine mechanics: suppression parsing, registry, file walking, rendering."""

import json

import pytest

from repro.analysis_checks import (
    Finding,
    LintRule,
    Severity,
    lint_paths,
    lint_source,
    register_rule,
    render_json,
    render_text,
    rule_ids,
    select_rules,
)
from repro.analysis_checks.engine import _suppressions, iter_python_files


class TestSuppressionParsing:
    def test_blanket_noqa_maps_to_none(self):
        table = _suppressions("x = 1  # repro: noqa\n")
        assert table == {1: None}

    def test_bracket_form_names_rules(self):
        table = _suppressions("x = 1  # repro: noqa[FP001, RC001]\n")
        assert table == {1: {"FP001", "RC001"}}

    def test_trailing_prose_after_bracket_ok(self):
        table = _suppressions(
            "x = 1  # repro: noqa[FP001] exact sentinel compare\n")
        assert table == {1: {"FP001"}}

    def test_plain_comment_is_not_noqa(self):
        assert _suppressions("x = 1  # regular comment\n") == {}
        # flake8-style noqa without the repro: prefix is ignored
        assert _suppressions("x = 1  # noqa\n") == {}

    def test_blanket_noqa_suppresses_every_rule(self):
        source = "def f(acc=[]):  # repro: noqa\n    assert isinstance(acc, list)\n"
        findings = lint_source(source)
        assert [f.rule for f in findings] == ["AS001"]  # line 2 not covered

    def test_noqa_on_last_line_of_multiline_node(self):
        source = ("ok = (x ==\n"
                  "      0.5)  # repro: noqa[FP001]\n")
        assert lint_source(source) == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        source = "ok = x == 0.5  # repro: noqa[EX001]\n"
        assert [f.rule for f in lint_source(source)] == ["FP001"]


class TestRegistry:
    def test_rule_ids_sorted(self):
        ids = rule_ids()
        assert ids == sorted(ids)
        assert "FP001" in ids

    def test_select_rules_strips_whitespace(self):
        (rule,) = select_rules([" FP001 "])
        assert rule.rule_id == "FP001"

    def test_register_rejects_malformed_id(self):
        class Malformed(LintRule):
            rule_id = "nope"
            description = "bad id"

            def check(self, tree, path):
                return iter(())

        with pytest.raises(ValueError, match="rule_id"):
            register_rule(Malformed)

    def test_register_rejects_duplicate_id(self):
        class Duplicate(LintRule):
            rule_id = "FP001"
            description = "already taken"

            def check(self, tree, path):
                return iter(())

        with pytest.raises(ValueError, match="duplicate"):
            register_rule(Duplicate)


class TestLintSource:
    def test_syntax_error_becomes_parse_finding(self):
        (finding,) = lint_source("def broken(:\n")
        assert finding.rule == "PARSE"
        assert finding.severity is Severity.ERROR

    def test_findings_carry_locations(self):
        (finding,) = lint_source("\nok = x == 0.5\n")
        assert (finding.line, finding.rule) == (2, "FP001")
        assert finding.path == "<string>"

    def test_rules_subset_honoured(self):
        source = "def f(acc=[]):\n    return acc == 0.5\n"
        findings = lint_source(source, rules=select_rules(["MD001"]))
        assert [f.rule for f in findings] == ["MD001"]


class TestFileWalking:
    def _tree(self, tmp_path):
        (tmp_path / "mod.py").write_text("ok = x == 0.5\n")
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "test_mod.py").write_text("ok = x == 0.5\n")
        (pkg / "mod_test.py").write_text("ok = x == 0.5\n")
        (pkg / "conftest.py").write_text("ok = x == 0.5\n")
        tests = tmp_path / "tests"
        tests.mkdir()
        (tests / "helper.py").write_text("ok = x == 0.5\n")
        return tmp_path

    def test_test_files_skipped_by_default(self, tmp_path):
        root = self._tree(tmp_path)
        names = [p.name for p in iter_python_files([root])]
        assert names == ["mod.py"]

    def test_skip_tests_false_walks_everything(self, tmp_path):
        root = self._tree(tmp_path)
        names = sorted(p.name for p in
                       iter_python_files([root], skip_tests=False))
        assert names == sorted(["mod.py", "test_mod.py", "mod_test.py",
                                "conftest.py", "helper.py"])

    def test_lint_paths_reports_per_file(self, tmp_path):
        root = self._tree(tmp_path)
        findings = lint_paths([root])
        assert [f.rule for f in findings] == ["FP001"]
        assert findings[0].path.endswith("mod.py")


class TestRendering:
    FINDINGS = [
        Finding("a.py", 3, 4, "FP001", Severity.WARNING, "float equality"),
        Finding("a.py", 1, 0, "MD001", Severity.ERROR, "mutable default"),
    ]

    def test_render_text_lines_and_summary(self):
        text = render_text(self.FINDINGS)
        assert "a.py:3:4: FP001 [warning] float equality" in text
        assert "1 error(s), 1 warning(s)" in text

    def test_render_text_empty(self):
        assert "0 finding(s)" in render_text([])

    def test_render_json_round_trips(self):
        document = json.loads(render_json(self.FINDINGS))
        assert document["counts"] == {"error": 1, "warning": 1}
        assert {entry["rule"] for entry in document["findings"]} == \
            {"FP001", "MD001"}
