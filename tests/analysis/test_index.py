"""ProjectIndex: symbol tables, import resolution, call graph, determinism."""

import textwrap

import pytest

from repro.analysis_checks.index import ProjectIndex, run_program_checks


@pytest.fixture()
def pkg(tmp_path):
    """A three-module package exercising every import/call shape."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("from pkg.core import Engine\n")
    (root / "core.py").write_text(textwrap.dedent("""\
        class Engine:
            def __init__(self):
                self._events = []
                self.count = 0

            def run(self, until_us):
                self._step()
                return until_us

            def _step(self):
                self.count += 1


        def make_engine():
            return Engine()
        """))
    (root / "driver.py").write_text(textwrap.dedent("""\
        import pkg.core as core
        from pkg.core import make_engine


        def drive(deadline_us):
            engine = make_engine()
            other = core.make_engine()
            return engine.run(deadline_us)
        """))
    (root / "test_ignored.py").write_text("def helper():\n    pass\n")
    return root


def build(root):
    return ProjectIndex.build([root])


class TestSymbols:
    def test_modules_and_test_files(self, pkg):
        index = build(pkg)
        assert set(index.modules) == {"pkg", "pkg.core", "pkg.driver"}

    def test_functions_and_methods_by_qualname(self, pkg):
        index = build(pkg)
        assert "pkg.core.make_engine" in index.functions
        assert "pkg.core.Engine.run" in index.functions
        info = index.functions["pkg.core.Engine.run"]
        assert info.cls == "Engine"
        assert info.params == ("until_us",)   # self is stripped

    def test_class_attrs_collect_self_stores(self, pkg):
        index = build(pkg)
        cls = index.classes["pkg.core.Engine"]
        assert {"_events", "count"} <= cls.attrs

    def test_imports_resolve_aliases(self, pkg):
        index = build(pkg)
        driver = index.modules["pkg.driver"]
        assert driver.imports["core"] == "pkg.core"
        assert driver.imports["make_engine"] == "pkg.core.make_engine"

    def test_flat_directory_sibling_import_resolves(self, tmp_path):
        """No package, no src anchor: ``--paths some/dir`` on loose
        scripts.  The index names them ``<dirname>.<stem>``; sibling
        imports (``from engine import wait``) must still resolve."""
        root = tmp_path / "flat"
        root.mkdir()
        (root / "engine.py").write_text("def wait(until_us):\n"
                                        "    return until_us\n")
        (root / "caller.py").write_text("from engine import wait\n\n\n"
                                        "def go(deadline_us):\n"
                                        "    return wait(deadline_us)\n")
        index = build(root)
        calls = [c for c in index.calls if c.raw == "wait"]
        assert calls and calls[0].callee == "flat.engine.wait"

    def test_relative_import_resolves(self, tmp_path):
        root = tmp_path / "rel"
        root.mkdir()
        (root / "__init__.py").write_text("")
        (root / "a.py").write_text("def f():\n    pass\n")
        (root / "b.py").write_text("from .a import f\n\n\ndef g():\n"
                                   "    return f()\n")
        index = build(root)
        assert index.modules["rel.b"].imports["f"] == "rel.a.f"
        calls = [c for c in index.calls if c.raw == "f"]
        assert calls and calls[0].callee == "rel.a.f"


class TestCallGraph:
    def _callees(self, index):
        return {(c.caller, c.callee) for c in index.calls
                if c.callee is not None}

    def test_local_and_imported_calls_resolve(self, pkg):
        index = build(pkg)
        edges = self._callees(index)
        assert ("pkg.driver.drive", "pkg.core.make_engine") in edges

    def test_module_alias_attribute_call_resolves(self, pkg):
        index = build(pkg)
        alias_calls = [c for c in index.calls
                       if c.raw == "core.make_engine"]
        assert alias_calls[0].callee == "pkg.core.make_engine"

    def test_self_method_call_resolves(self, pkg):
        index = build(pkg)
        edges = self._callees(index)
        assert ("pkg.core.Engine.run", "pkg.core.Engine._step") in edges

    def test_unique_method_lookup(self, pkg):
        index = build(pkg)
        assert index.unique_method("run").qualname == "pkg.core.Engine.run"
        assert index.unique_method("nope") is None

    def test_stats_shape(self, pkg):
        index = build(pkg)
        stats = index.stats()
        assert stats["modules"] == 3
        assert stats["classes"] == 1
        assert stats["resolved_calls"] >= 3
        assert stats["call_sites"] >= stats["resolved_calls"]


class TestReferenceCorpus:
    def test_reference_paths_count_without_indexing(self, pkg, tmp_path):
        extra = tmp_path / "tests_dir"
        extra.mkdir()
        (extra / "test_uses.py").write_text(
            "from pkg.core import make_engine\nmake_engine()\n")
        index = ProjectIndex.build([pkg], reference_paths=[extra])
        assert "tests_dir.test_uses" not in index.modules
        # the reference file's mention counts toward name_refs
        bare = ProjectIndex.build([pkg])
        assert index.name_refs["make_engine"] > \
            bare.name_refs["make_engine"]

    def test_indexed_files_are_never_double_counted(self, pkg):
        once = ProjectIndex.build([pkg])
        twice = ProjectIndex.build([pkg], reference_paths=[pkg])
        assert once.name_refs == twice.name_refs
        assert once.string_refs == twice.string_refs


class TestDeterminism:
    def test_two_runs_produce_identical_findings(self, pkg):
        first = run_program_checks([pkg])
        second = run_program_checks([pkg])
        assert [f.render() for f in first[0]] == \
            [f.render() for f in second[0]]
        assert first[1] == second[1]
        assert first[2] == second[2]

    def test_unknown_only_rules_run_nothing(self, pkg):
        findings, covered, stats = run_program_checks(
            [pkg], only=["ZZ999"])
        assert findings == [] and covered == set() and stats == {}
