"""Domain contracts: the zoo -> FLOPs -> kernels -> persistence sweep.

The regression class pins the *current* coverage exactly: every layer
kind the zoo emits today is listed, and every contract's gap list is
asserted empty. A new layer kind (or a lost mapping) must show up here
loudly rather than silently degrade a prediction tier.
"""

import pytest

import repro.gpu.cudnn as cudnn
from repro import zoo
from repro.analysis_checks import CONTRACT_RULES, check_contracts
from repro.nn.flops import counted_kinds

#: Every layer kind the 36 named zoo networks emit today. Adding a new
#: layer to the zoo must extend this list (and its FLOP + kernel
#: coverage); losing coverage must fail the contract sweep below.
EXPECTED_LAYER_KINDS = [
    "AdaptiveAvgPool", "Add", "AttnContext", "AttnScores", "AvgPool",
    "BN", "CONV", "ChannelShuffle", "Concat", "Dropout", "Embedding",
    "FC", "Flatten", "GELU", "LN", "MaxPool", "Mul", "ReLU", "ReLU6",
    "SiLU", "Sigmoid", "Softmax", "Tanh", "ToSequence",
]


@pytest.fixture(scope="module")
def full_report():
    return check_contracts()


class TestCleanSweep:
    def test_full_zoo_is_contract_clean(self, full_report):
        assert full_report.ok, [f.render() for f in full_report.findings]

    def test_every_contract_gap_list_empty(self, full_report):
        assert full_report.gaps() == {rule: [] for rule in CONTRACT_RULES}

    def test_layer_kind_coverage_pinned_exactly(self, full_report):
        assert sorted(full_report.layer_kinds) == EXPECTED_LAYER_KINDS

    def test_sweep_covers_every_named_model(self, full_report):
        assert full_report.networks == zoo.model_names()
        assert len(full_report.networks) == 36

    def test_summary_reports_ok(self, full_report):
        summary = full_report.summary()
        assert summary.endswith("ok")
        assert "36 network(s)" in summary

    def test_emitted_kinds_subset_of_flop_rules(self, full_report):
        assert full_report.layer_kinds <= set(counted_kinds())

    def test_signatures_and_kernels_nonempty(self, full_report):
        assert full_report.kernel_names
        assert full_report.signatures
        # each signature mapped to at least its own kernel sequence
        assert all(isinstance(seq, tuple)
                   for seq in full_report.sequences.values())


class TestBatchParityContract:
    def test_ct009_registered(self):
        assert "CT009" in CONTRACT_RULES
        assert "evaluate_many" in CONTRACT_RULES["CT009"]

    def test_full_sweep_is_ct009_clean(self, full_report):
        assert full_report.gaps()["CT009"] == []

    def test_subset_skips_the_trained_parity_sweep(self):
        # CT007/CT009 train a campaign, so named subsets skip them;
        # the gap entry still exists (and is empty) for both
        report = check_contracts(["alexnet"])
        assert report.gaps()["CT009"] == []
        assert report.gaps()["CT007"] == []


class TestFleetStudyContract:
    def test_ct010_registered(self):
        assert "CT010" in CONTRACT_RULES
        assert "fleet study" in CONTRACT_RULES["CT010"]

    def test_subset_sweep_is_ct010_clean(self):
        # CT010 is a pure set comparison, so it runs even on subsets
        assert check_contracts(["alexnet"]).gaps()["CT010"] == []

    def test_unstudied_policy_is_a_violation(self, monkeypatch):
        from repro.fleet import policies
        from repro.fleet.policies import PlacementPolicy

        monkeypatch.setitem(policies._REGISTRY, "fifo", PlacementPolicy)
        report = check_contracts(["alexnet"])
        assert "fifo" in report.gaps()["CT010"]
        ct010 = [f for f in report.findings if f.rule == "CT010"]
        assert all(f.path == "repro.fleet.policies" for f in ct010)

    def test_ghost_study_entry_is_a_violation(self, monkeypatch):
        from repro.fleet import policies

        monkeypatch.delitem(policies._REGISTRY, "jsq")
        report = check_contracts(["alexnet"])
        assert "jsq" in report.gaps()["CT010"]


class TestSubsetsAndArguments:
    def test_single_network_subset(self):
        report = check_contracts(["alexnet"])
        assert report.networks == ["alexnet"]
        assert report.ok
        assert "FC" in report.layer_kinds

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            check_contracts(["alexnet"], batch_size=0)

    def test_larger_batch_still_clean(self):
        assert check_contracts(["resnet18"], batch_size=8).ok


class TestSeededViolations:
    def test_unknown_network_is_ct001(self):
        report = check_contracts(["no-such-net"])
        assert not report.ok
        assert {f.rule for f in report.findings} == {"CT001"}
        assert report.gaps()["CT001"] == ["no-such-net"]

    def test_missing_forward_handler_is_ct003(self, monkeypatch):
        monkeypatch.delitem(cudnn._HANDLERS, "BN")
        report = check_contracts(["resnet18"])
        assert "CT003" in {f.rule for f in report.findings}
        assert "BN" in report.gaps()["CT003"]

    def test_missing_backward_handler_is_ct004(self, monkeypatch):
        monkeypatch.delitem(cudnn._BACKWARD_HANDLERS, "CONV")
        report = check_contracts(["alexnet"])
        assert "CT004" in {f.rule for f in report.findings}
        assert "CONV" in report.gaps()["CT004"]

    def test_contract_findings_name_the_contract_module(self, monkeypatch):
        monkeypatch.delitem(cudnn._HANDLERS, "BN")
        report = check_contracts(["resnet18"])
        ct003 = [f for f in report.findings if f.rule == "CT003"]
        assert all(f.path == "repro.gpu.cudnn" for f in ct003)

    def test_findings_deduplicated_per_kind(self, monkeypatch):
        monkeypatch.delitem(cudnn._HANDLERS, "ReLU")
        # resnet18 emits many ReLU layers; the gap reads as one line
        report = check_contracts(["resnet18"])
        ct003 = [f for f in report.findings if f.rule == "CT003"]
        assert len(ct003) == 1
