"""RC100: trigger/suppress pairs for the flow-sensitive race detector."""

import textwrap

import pytest

from repro.analysis_checks import Severity
from repro.analysis_checks.index import ProjectIndex
from repro.analysis_checks.races import check_races

HEADER = """\
import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self._hits = 0

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
            self._hits += 1
"""


def rc100(tmp_path, body="", source=None):
    """Run RC100 over the Store class extended with ``body`` methods."""
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("")
    if source is None:
        source = HEADER + "\n" + textwrap.indent(
            textwrap.dedent(body), "    ")
    else:
        source = textwrap.dedent(source)
    (root / "mod.py").write_text(source)
    index = ProjectIndex.build([root])
    return check_races(index)


class TestUnlockedReads:
    def test_public_unlocked_read_flagged(self, tmp_path):
        findings, covered = rc100(tmp_path, """\
            def hits(self):
                return self._hits
            """)
        (finding,) = findings
        assert finding.rule == "RC100"
        assert finding.severity is Severity.ERROR
        assert "Store.hits() reads self._hits" in finding.message
        assert covered == {(finding.path, "Store")}

    def test_locked_read_is_clean(self, tmp_path):
        findings, _ = rc100(tmp_path, """\
            def hits(self):
                with self._lock:
                    return self._hits
            """)
        assert findings == []

    def test_property_read_flagged(self, tmp_path):
        findings, _ = rc100(tmp_path, """\
            @property
            def ratio(self):
                return self._hits / max(len(self._items), 1)
            """)
        assert len(findings) == 2    # _hits and _items, same line

    def test_init_reads_and_writes_exempt(self, tmp_path):
        findings, _ = rc100(tmp_path, "")
        assert findings == []


class TestHelperReachability:
    def test_helper_called_only_under_lock_is_clean(self, tmp_path):
        findings, _ = rc100(tmp_path, """\
            def snapshot(self):
                with self._lock:
                    return self._render()

            def _render(self):
                return dict(self._items)
            """)
        assert findings == []

    def test_helper_reachable_unlocked_flagged(self, tmp_path):
        findings, _ = rc100(tmp_path, """\
            def snapshot(self):
                return self._render()

            def _render(self):
                return dict(self._items)
            """)
        (finding,) = findings
        assert "Store._render() reads self._items" in finding.message

    def test_escaped_helper_flagged(self, tmp_path):
        findings, _ = rc100(tmp_path, """\
            def start(self):
                threading.Thread(target=self._drain).start()

            def _drain(self):
                self._items.clear()
            """)
        (finding,) = findings
        assert "Store._drain() mutates self._items" in finding.message

    def test_unlocked_write_flagged_as_write(self, tmp_path):
        findings, _ = rc100(tmp_path, """\
            def reset(self):
                self._hits = 0
            """)
        (finding,) = findings
        assert "writes self._hits" in finding.message

    def test_transitive_helper_chain_flagged(self, tmp_path):
        findings, _ = rc100(tmp_path, """\
            def outer(self):
                return self._mid()

            def _mid(self):
                return self._leaf()

            def _leaf(self):
                return self._hits
            """)
        (finding,) = findings
        assert "Store._leaf() reads self._hits" in finding.message


class TestAtomicFieldExemption:
    def test_queue_field_read_unlocked_is_clean(self, tmp_path):
        # a field only ever assigned an internally-synchronised type is
        # a stable handle: lock-free reads are the whole point of it
        findings, covered = rc100(tmp_path, source="""\
            import queue
            import threading


            class Dispatcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = queue.Queue(64)
                    self._pending = {}

                def reset(self):
                    with self._lock:
                        self._queue = queue.Queue(64)
                        self._pending = {}

                def depth(self):
                    return self._queue.qsize()
            """)
        assert findings == []
        assert covered            # _pending still makes the class covered

    def test_reassigned_to_plain_value_revokes_exemption(self, tmp_path):
        findings, _ = rc100(tmp_path, source="""\
            import queue
            import threading


            class Dispatcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = queue.Queue(64)

                def reset(self):
                    with self._lock:
                        self._queue = None      # no longer a stable handle

                def depth(self):
                    return self._queue.qsize()
            """)
        (finding,) = findings
        assert "Dispatcher.depth() reads self._queue" in finding.message

    def test_event_and_metrics_registry_are_atomic(self, tmp_path):
        findings, _ = rc100(tmp_path, source="""\
            import threading

            from repro.service.metrics import MetricsRegistry


            class Frontend:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._stop = threading.Event()
                    self._metrics = MetricsRegistry()
                    self._state = "idle"

                def configure(self, state):
                    with self._lock:
                        self._stop = threading.Event()
                        self._metrics = MetricsRegistry()
                        self._state = state

                def shed(self):
                    self._metrics.increment("shed_total")
                    return self._stop.is_set()
            """)
        assert findings == []

    def test_annotated_atomic_assignment_counts(self, tmp_path):
        findings, _ = rc100(tmp_path, source="""\
            import queue
            import threading


            class Dispatcher:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue: "queue.Queue" = queue.Queue()

                def refresh(self):
                    with self._lock:
                        self._queue = queue.Queue()

                def depth(self):
                    return self._queue.qsize()
            """)
        assert findings == []

    def test_augmented_assignment_disqualifies(self, tmp_path):
        # += rebinding means the field is state, not a handle
        findings, _ = rc100(tmp_path, source="""\
            import collections
            import threading


            class Tally:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._window = collections.deque()

                def extend(self, items):
                    with self._lock:
                        self._window += items

                def peek(self):
                    return list(self._window)
            """)
        (finding,) = findings
        assert "Tally.peek() reads self._window" in finding.message


class TestCoverage:
    def test_lockless_class_not_covered(self, tmp_path):
        findings, covered = rc100(tmp_path, source="""\
            class Plain:
                def __init__(self):
                    self._items = {}

                def put(self, key, value):
                    self._items[key] = value
            """)
        assert findings == [] and covered == set()

    def test_lock_without_guarded_fields_not_covered(self, tmp_path):
        # the class owns a lock but never locks anything: RC100 has no
        # signal, so syntactic RC001 must keep applying (not superseded)
        findings, covered = rc100(tmp_path, source="""\
            import threading


            class Sloppy:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    self._items[key] = value
            """)
        assert findings == [] and covered == set()

    def test_noqa_suppresses(self, tmp_path):
        findings, covered = rc100(tmp_path, """\
            def hits(self):
                return self._hits  # repro: noqa[RC100] monotone counter
            """)
        assert findings == []
        assert covered           # suppression does not un-cover the class


class TestRealTree:
    @pytest.fixture(scope="class")
    def real(self):
        from pathlib import Path

        import repro
        index = ProjectIndex.build([Path(repro.__file__).parent])
        return check_races(index)

    def test_repo_tree_is_race_clean(self, real):
        findings, _ = real
        assert findings == []

    def test_service_classes_are_covered(self, real):
        _, covered = real
        names = {cls for _, cls in covered}
        assert {"PredictionCache", "ModelRegistry",
                "FeedbackLog"} <= names
