"""Each lint rule: a snippet that triggers it and one that suppresses it."""

import textwrap

import pytest

from repro.analysis_checks import Severity, lint_source, select_rules


def findings_for(rule_id, source):
    findings = lint_source(textwrap.dedent(source))
    assert not any(f.rule == "PARSE" for f in findings), findings
    return [f for f in findings if f.rule == rule_id]


class TestRC001LockDiscipline:
    LOCKED_CLASS = (
        "import threading\n"
        "\n"
        "class Store:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = {}\n"
        "        self._count = 0\n"
        "\n"
        "    def %s\n")

    def test_unlocked_assignment_flagged(self):
        source = self.LOCKED_CLASS % "put(self, k, v):\n        self._items[k] = v"
        (finding,) = findings_for("RC001", source)
        assert "_items" in finding.message
        assert finding.severity is Severity.ERROR

    def test_unlocked_augassign_flagged(self):
        source = self.LOCKED_CLASS % "bump(self):\n        self._count += 1"
        assert len(findings_for("RC001", source)) == 1

    def test_unlocked_mutator_call_flagged(self):
        source = self.LOCKED_CLASS % ("drop(self, k):\n"
                                      "        self._items.pop(k, None)")
        (finding,) = findings_for("RC001", source)
        assert "pop" in finding.message

    def test_locked_mutation_is_clean(self):
        source = self.LOCKED_CLASS % ("put(self, k, v):\n"
                                      "        with self._lock:\n"
                                      "            self._items[k] = v")
        assert findings_for("RC001", source) == []

    def test_mutation_in_branch_under_lock_is_clean(self):
        source = self.LOCKED_CLASS % ("put(self, k, v):\n"
                                      "        with self._lock:\n"
                                      "            if k not in self._items:\n"
                                      "                self._items[k] = v")
        assert findings_for("RC001", source) == []

    def test_branch_outside_lock_flagged(self):
        source = self.LOCKED_CLASS % ("put(self, k, v):\n"
                                      "        if v:\n"
                                      "            self._items[k] = v")
        assert len(findings_for("RC001", source)) == 1

    def test_init_is_exempt(self):
        source = """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}
        """
        assert findings_for("RC001", source) == []

    def test_lockless_class_is_exempt(self):
        source = """
            class Plain:
                def __init__(self):
                    self._items = {}

                def put(self, k, v):
                    self._items[k] = v
        """
        assert findings_for("RC001", source) == []

    def test_other_objects_private_attrs_ignored(self):
        source = self.LOCKED_CLASS % ("fill(self, entry):\n"
                                      "        entry._resolved = {}")
        assert findings_for("RC001", source) == []

    def test_public_attribute_ignored(self):
        source = self.LOCKED_CLASS % ("label(self, text):\n"
                                      "        self.name = text")
        assert findings_for("RC001", source) == []

    def test_noqa_suppresses(self):
        source = self.LOCKED_CLASS % (
            "put(self, k, v):\n"
            "        self._items[k] = v  # repro: noqa[RC001]")
        assert findings_for("RC001", source) == []


class TestFP001FloatEquality:
    def test_eq_float_literal_flagged(self):
        (finding,) = findings_for("FP001", "ok = x == 0.5\n")
        assert finding.severity is Severity.WARNING

    def test_neq_and_negative_literal_flagged(self):
        assert findings_for("FP001", "ok = x != -1.5\n")

    def test_int_literal_not_flagged(self):
        assert findings_for("FP001", "ok = x == 0\n") == []

    def test_ordering_comparison_not_flagged(self):
        assert findings_for("FP001", "ok = x <= 0.5\n") == []

    def test_noqa_suppresses(self):
        source = "ok = x == 0.5  # repro: noqa[FP001] exact sentinel\n"
        assert findings_for("FP001", source) == []


class TestAS001AssertGuard:
    def test_assert_isinstance_flagged(self):
        (finding,) = findings_for(
            "AS001", "assert isinstance(layer, Conv2d)\n")
        assert "python -O" in finding.message

    def test_assert_shape_comparison_flagged(self):
        assert findings_for("AS001", "assert len(shapes) == 2\n")
        assert findings_for("AS001", "assert x.shape == y.shape\n")

    def test_plain_assert_not_flagged(self):
        assert findings_for("AS001", "assert ready\n") == []

    def test_noqa_suppresses(self):
        source = "assert isinstance(x, int)  # repro: noqa[AS001]\n"
        assert findings_for("AS001", source) == []


class TestMD001MutableDefault:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()",
                                         "collections.OrderedDict()"])
    def test_mutable_defaults_flagged(self, default):
        assert findings_for("MD001", f"def f(x, acc={default}):\n"
                                     "    return acc\n")

    def test_keyword_only_default_flagged(self):
        assert findings_for("MD001", "def f(*, acc=[]):\n    return acc\n")

    def test_none_and_tuple_defaults_clean(self):
        source = "def f(x=None, y=(), z=0):\n    return x, y, z\n"
        assert findings_for("MD001", source) == []

    def test_noqa_suppresses(self):
        source = "def f(acc=[]):  # repro: noqa[MD001]\n    return acc\n"
        assert findings_for("MD001", source) == []


class TestEX001BroadExcept:
    def test_bare_except_is_error(self):
        source = "try:\n    work()\nexcept:\n    pass\n"
        (finding,) = findings_for("EX001", source)
        assert finding.severity is Severity.ERROR

    def test_swallowing_except_exception_is_warning(self):
        source = "try:\n    work()\nexcept Exception:\n    pass\n"
        (finding,) = findings_for("EX001", source)
        assert finding.severity is Severity.WARNING

    def test_reraising_handler_is_clean(self):
        source = ("try:\n    work()\nexcept Exception as exc:\n"
                  "    raise RuntimeError('context') from exc\n")
        assert findings_for("EX001", source) == []

    def test_narrow_except_is_clean(self):
        source = "try:\n    work()\nexcept KeyError:\n    pass\n"
        assert findings_for("EX001", source) == []

    def test_noqa_suppresses(self):
        source = ("try:\n    work()\n"
                  "except Exception:  # repro: noqa[EX001] best effort\n"
                  "    pass\n")
        assert findings_for("EX001", source) == []


class TestEX002AnonymousExceptionLabel:
    TRY = "try:\n    work()\n"

    def test_str_of_caught_exception_flagged(self):
        source = (self.TRY + "except Exception as exc:\n"
                  "    label = str(exc)\n")
        (finding,) = findings_for("EX002", source)
        assert finding.severity is Severity.WARNING
        assert "type(exc).__name__" in finding.message

    def test_fstring_of_caught_exception_flagged(self):
        source = (self.TRY + "except Exception as exc:\n"
                  "    label = f'failed: {exc}'\n")
        assert len(findings_for("EX002", source)) == 1

    def test_repr_conversion_is_clean(self):
        source = (self.TRY + "except Exception as exc:\n"
                  "    label = f'failed: {exc!r}'\n")
        assert findings_for("EX002", source) == []

    def test_type_name_prefix_is_clean(self):
        source = (self.TRY + "except Exception as exc:\n"
                  "    label = f'{type(exc).__name__}: {exc}'\n")
        assert findings_for("EX002", source) == []

    def test_reraising_handler_is_clean(self):
        source = (self.TRY + "except Exception as exc:\n"
                  "    log(str(exc))\n"
                  "    raise\n")
        assert findings_for("EX002", source) == []

    def test_narrow_handler_is_clean(self):
        source = (self.TRY + "except KeyError as exc:\n"
                  "    label = str(exc)\n")
        assert findings_for("EX002", source) == []

    def test_anonymous_handler_is_skipped(self):
        source = (self.TRY + "except Exception:\n"
                  "    label = 'failed'\n")
        assert findings_for("EX002", source) == []

    def test_noqa_suppresses(self):
        source = (self.TRY
                  + "except Exception as exc:  # repro: noqa[EX002]\n"
                  "    label = str(exc)\n")
        assert findings_for("EX002", source) == []

    def test_rule_is_scoped_to_service_paths(self):
        import textwrap

        from repro.analysis_checks import lint_source

        source = textwrap.dedent(
            self.TRY + "except Exception as exc:\n"
            "    label = str(exc)\n")
        in_service = lint_source(source, path="src/repro/service/x.py")
        outside = lint_source(source, path="src/repro/core/x.py")
        assert any(f.rule == "EX002" for f in in_service)
        assert not any(f.rule == "EX002" for f in outside)

    def test_service_package_is_clean(self):
        """Regression: the shipped service layer never erases the
        exception type from a label."""
        from pathlib import Path

        from repro.analysis_checks import lint_paths

        package = Path(__file__).parents[2] / "src" / "repro" / "service"
        findings = lint_paths([package])
        assert [f for f in findings if f.rule == "EX002"] == []


class TestRuleRegistry:
    def test_all_rules_registered(self):
        ids = {rule.rule_id for rule in select_rules()}
        assert {"RC001", "FP001", "AS001", "MD001", "EX001",
                "EX002"} <= ids

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            select_rules(["ZZ999"])
