"""DC001: dead public functions, registry drift, counter drift."""

import textwrap

from repro.analysis_checks import Severity
from repro.analysis_checks.index import ProjectIndex
from repro.analysis_checks.surface import check_surface


def dc001(tmp_path, reference=None, **modules):
    root = tmp_path / "pkg"
    root.mkdir(exist_ok=True)
    init = root / "__init__.py"
    if not init.exists():
        init.write_text("")
    for name, source in modules.items():
        (root / f"{name}.py").write_text(textwrap.dedent(source))
    reference_paths = []
    if reference is not None:
        ref_dir = tmp_path / "refs"
        ref_dir.mkdir(exist_ok=True)
        (ref_dir / "test_ref.py").write_text(textwrap.dedent(reference))
        reference_paths = [ref_dir]
    index = ProjectIndex.build([root], reference_paths=reference_paths)
    return check_surface(index)


class TestDeadFunctions:
    def test_unreferenced_public_function_flagged(self, tmp_path):
        (finding,) = dc001(tmp_path, a="""\
            def orphan():
                return 1
            """)
        assert finding.rule == "DC001"
        assert finding.severity is Severity.WARNING
        assert "orphan()" in finding.message

    def test_called_function_is_clean(self, tmp_path):
        assert dc001(tmp_path, a="""\
            def used():
                return 1


            value = used()
            """) == []

    def test_cross_module_import_keeps_function_alive(self, tmp_path):
        assert dc001(
            tmp_path,
            a="def exported():\n    return 1\n",
            b="from pkg.a import exported\n\nexported()\n") == []

    def test_reference_corpus_keeps_function_alive(self, tmp_path):
        assert dc001(
            tmp_path,
            reference="from pkg.a import tested\n\ntested()\n",
            a="def tested():\n    return 1\n") == []

    def test_private_and_decorated_functions_exempt(self, tmp_path):
        assert dc001(tmp_path, a="""\
            import functools


            def _internal():
                return 1


            @functools.lru_cache()
            def registered():
                return 2
            """) == []

    def test_noqa_suppresses(self, tmp_path):
        assert dc001(tmp_path, a="""\
            def future_api():  # repro: noqa[DC001] public surface, next PR
                return 1
            """) == []


class TestRegistryDrift:
    REGISTERED = """\
        def register_policy(cls):
            return cls


        @register_policy
        class GhostPolicy:
            policy_name = "ghost"


        @register_policy
        class UsedPolicy:
            policy_name = "used"


        DEFAULT = "used"
        """

    def test_unreferenced_registry_key_flagged(self, tmp_path):
        findings = dc001(tmp_path, a=self.REGISTERED)
        keys = [f for f in findings if "registry entry" in f.message]
        (finding,) = keys
        assert "'ghost'" in finding.message and "GhostPolicy" \
            in finding.message

    def test_key_referenced_from_tests_is_clean(self, tmp_path):
        findings = dc001(tmp_path, a=self.REGISTERED,
                         reference="GHOSTS = ['ghost']\n")
        assert [f for f in findings if "registry entry" in f.message] == []

    def test_undecorated_class_attr_not_a_registry_key(self, tmp_path):
        findings = dc001(tmp_path, a="""\
            class Config:
                run_name = "nobody-mentions-this"
            """)
        assert [f for f in findings if "registry entry" in f.message] == []


class TestCounterDrift:
    def test_unexposed_counter_flagged(self, tmp_path):
        findings = dc001(tmp_path, a="""\
            class Metrics:
                def __init__(self):
                    self.counts = {}

                def increment(self, name):
                    self.counts[name] = self.counts.get(name, 0) + 1


            def handler(metrics):
                metrics.increment("requests_dropped_total")
            """)
        counter = [f for f in findings if "counter" in f.message]
        (finding,) = counter
        assert "'requests_dropped_total'" in finding.message

    def test_counter_asserted_in_tests_is_clean(self, tmp_path):
        findings = dc001(
            tmp_path,
            reference="""\
                def test_counter(snapshot):
                    assert snapshot["requests_dropped_total"] == 0
                """,
            a="""\
                def handler(metrics):
                    metrics.increment("requests_dropped_total")
                """)
        assert [f for f in findings if "counter" in f.message] == []

    def test_multiple_increments_alone_still_drift(self, tmp_path):
        # three increment sites of the same name are not "exposure"
        findings = dc001(tmp_path, a="""\
            def a(m):
                m.increment("lost_total")


            def b(m):
                m.increment("lost_total")


            def c(m):
                m.increment("lost_total")
            """)
        counter = [f for f in findings if "counter" in f.message]
        assert len(counter) == 1
