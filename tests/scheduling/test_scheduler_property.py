"""Property tests: greedy scheduling against the brute-force optimum."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.scheduler import brute_force_schedule, greedy_schedule

times_us = st.floats(min_value=1.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False)


@st.composite
def instances(draw):
    """A small random unrelated-machines scheduling instance."""
    n_jobs = draw(st.integers(min_value=1, max_value=6))
    n_gpus = draw(st.integers(min_value=1, max_value=3))
    jobs = [f"job{j}" for j in range(n_jobs)]
    gpus = [f"gpu{g}" for g in range(n_gpus)]
    times = {(job, gpu): draw(times_us) for job in jobs for gpu in gpus}
    return jobs, gpus, times


class TestGreedyVersusBruteForce:
    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_brute_force_is_a_lower_bound(self, instance):
        """No heuristic beats exhaustive search on its own objective."""
        jobs, gpus, times = instance
        optimal = brute_force_schedule(jobs, gpus, times)
        greedy = greedy_schedule(jobs, gpus, times)
        # tiny epsilon: both makespans are sums of the same floats
        assert greedy.makespan_us >= optimal.makespan_us * (1 - 1e-9)

    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_both_assign_every_job_to_a_known_gpu(self, instance):
        jobs, gpus, times = instance
        for schedule in (brute_force_schedule(jobs, gpus, times),
                         greedy_schedule(jobs, gpus, times)):
            assert sorted(schedule.assignment) == sorted(jobs)
            assert set(schedule.assignment.values()) <= set(gpus)

    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_makespan_is_the_max_gpu_load(self, instance):
        jobs, gpus, times = instance
        schedule = greedy_schedule(jobs, gpus, times)
        loads = {gpu: 0.0 for gpu in gpus}
        for job, gpu in schedule.assignment.items():
            loads[gpu] += times[(job, gpu)]
        assert schedule.makespan_us == max(loads.values())
