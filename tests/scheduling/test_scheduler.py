"""Tests for queue scheduling (case study 3)."""

import pytest

from repro.scheduling.scheduler import (
    brute_force_schedule,
    greedy_schedule,
    oracle_gap,
)

GPUS = ("g1", "g2")


def times_of(jobs, g1_times, g2_times):
    times = {}
    for job, t1, t2 in zip(jobs, g1_times, g2_times):
        times[(job, "g1")] = t1
        times[(job, "g2")] = t2
    return times


class TestBruteForce:
    def test_trivial_single_job(self):
        times = times_of(["a"], [10.0], [20.0])
        schedule = brute_force_schedule(["a"], GPUS, times)
        assert schedule.assignment["a"] == "g1"
        assert schedule.makespan_us == 10.0

    def test_balances_identical_jobs(self):
        jobs = ["a", "b"]
        times = times_of(jobs, [10.0, 10.0], [10.0, 10.0])
        schedule = brute_force_schedule(jobs, GPUS, times)
        assert schedule.makespan_us == 10.0
        assert len(set(schedule.assignment.values())) == 2

    def test_optimal_against_exhaustive_check(self):
        jobs = ["a", "b", "c", "d"]
        times = times_of(jobs, [5, 9, 3, 7], [6, 4, 8, 7])
        schedule = brute_force_schedule(jobs, GPUS, times)
        # optimum: a+c on g1 (8), b on g2 (4), d anywhere -> check makespan
        assert schedule.makespan_us <= 11.0

    def test_missing_time_rejected(self):
        with pytest.raises(KeyError):
            brute_force_schedule(["a"], GPUS, {("a", "g1"): 1.0})

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            brute_force_schedule([], GPUS, {})

    def test_blowup_guard(self):
        jobs = [f"j{i}" for i in range(40)]
        times = {(j, g): 1.0 for j in jobs for g in GPUS}
        with pytest.raises(ValueError):
            brute_force_schedule(jobs, GPUS, times)

    def test_loads_consistent_with_assignment(self):
        jobs = ["a", "b", "c"]
        times = times_of(jobs, [5, 9, 3], [6, 4, 8])
        schedule = brute_force_schedule(jobs, GPUS, times)
        for gpu in GPUS:
            expected = sum(times[(job, gpu)]
                           for job in schedule.jobs_on(gpu))
            assert schedule.gpu_loads_us[gpu] == pytest.approx(expected)

    def test_render_mentions_gpus(self):
        jobs = ["a"]
        schedule = brute_force_schedule(jobs, GPUS, times_of(jobs, [1], [2]))
        text = schedule.render()
        assert "g1" in text and "g2" in text and "makespan" in text


class TestGreedy:
    def test_matches_brute_force_on_small_inputs(self):
        jobs = ["a", "b", "c", "d", "e"]
        times = times_of(jobs, [5, 9, 3, 7, 2], [6, 4, 8, 7, 3])
        greedy = greedy_schedule(jobs, GPUS, times)
        optimal = brute_force_schedule(jobs, GPUS, times)
        assert greedy.makespan_us <= 1.5 * optimal.makespan_us

    def test_scales_beyond_brute_force(self):
        jobs = [f"j{i}" for i in range(200)]
        times = {(j, g): float(i % 7 + 1)
                 for i, j in enumerate(jobs) for g in GPUS}
        schedule = greedy_schedule(jobs, GPUS, times)
        assert schedule.makespan_us > 0
        assert set(schedule.assignment) == set(jobs)


class TestOracleGap:
    def test_zero_when_assignments_match(self):
        jobs = ["a", "b"]
        times = times_of(jobs, [10, 2], [3, 11])
        predicted = brute_force_schedule(jobs, GPUS, times)
        oracle = brute_force_schedule(jobs, GPUS, times)
        assert oracle_gap(predicted, oracle, times, GPUS) == pytest.approx(
            0.0)

    def test_positive_when_predictions_mislead(self):
        jobs = ["a", "b"]
        true_times = times_of(jobs, [10.0, 10.0], [1.0, 1.0])
        bad_times = times_of(jobs, [1.0, 1.0], [10.0, 10.0])
        predicted = brute_force_schedule(jobs, GPUS, bad_times)
        oracle = brute_force_schedule(jobs, GPUS, true_times)
        gap = oracle_gap(predicted, oracle, true_times, GPUS)
        assert gap > 0
