"""Tests for predicted-time GPU placement."""

import pytest

from repro.scheduling.placement import (
    PlacementDecision,
    place_networks,
    placement_accuracy,
)


class _ConstantModel:
    """Stub predictor returning scale * FLOPs."""

    def __init__(self, scale):
        self.scale = scale

    def predict_network(self, network, batch_size):
        return self.scale * network.total_flops(batch_size)


class TestPlaceNetworks:
    def test_picks_lower_predicted_time(self, small_roster):
        predictors = {"fast": _ConstantModel(1e-9),
                      "slow": _ConstantModel(5e-9)}
        decisions = place_networks(small_roster[:3], 8, predictors)
        assert all(d.predicted_best == "fast" for d in decisions)

    def test_measured_validation(self, small_roster):
        predictors = {"fast": _ConstantModel(1e-9),
                      "slow": _ConstantModel(5e-9)}
        measured = {}
        for net in small_roster[:3]:
            measured[(net.name, "fast")] = 1.0
            measured[(net.name, "slow")] = 2.0
        decisions = place_networks(small_roster[:3], 8, predictors,
                                   measured)
        assert placement_accuracy(decisions) == 1.0

    def test_incorrect_pick_detected(self, small_roster):
        predictors = {"a": _ConstantModel(1e-9), "b": _ConstantModel(5e-9)}
        measured = {}
        for net in small_roster[:2]:
            measured[(net.name, "a")] = 9.0   # actually slower
            measured[(net.name, "b")] = 1.0
        decisions = place_networks(small_roster[:2], 8, predictors,
                                   measured)
        assert placement_accuracy(decisions) == 0.0
        assert all(not d.correct for d in decisions)

    def test_empty_predictors_rejected(self, small_roster):
        with pytest.raises(ValueError):
            place_networks(small_roster[:1], 8, {})

    def test_accuracy_requires_measured(self):
        decision = PlacementDecision("n", {"g": 1.0}, {})
        with pytest.raises(ValueError):
            placement_accuracy([decision])

    def test_measured_best_requires_measurements(self):
        decision = PlacementDecision("n", {"g": 1.0}, {})
        with pytest.raises(ValueError):
            decision.measured_best
