"""Tests for the ASCII rendering helpers."""

import pytest

from repro.reporting import render_series, render_table


class TestRenderTable:
    def test_headers_and_rows_present(self):
        text = render_table(["name", "value"], [["a", 1.5], ["b", 2.5]])
        assert "name" in text
        assert "a" in text and "2.5" in text

    def test_title_included(self):
        text = render_table(["x"], [[1]], title="Table 1")
        assert text.startswith("Table 1")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_numeric_formatting(self):
        text = render_table(["v"], [[1.23456789]])
        assert "1.235" in text

    def test_column_alignment(self):
        text = render_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestRenderSeries:
    def test_points_and_bars(self):
        text = render_series("fig", [(1, 10.0), (2, 20.0)], "bw", "ms")
        assert "fig" in text
        assert "#" in text
        assert "bw" in text and "ms" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_series("fig", [])

    def test_bar_lengths_proportional(self):
        text = render_series("fig", [(1, 10.0), (2, 20.0)], width=10)
        lines = text.splitlines()
        assert lines[-1].count("#") == 2 * lines[-2].count("#")
