"""Tests for the ASCII scatter renderer."""

import pytest

from repro.reporting.plots import render_scatter


class TestRenderScatter:
    def test_single_series(self):
        text = render_scatter("t", {"a": [(1, 1), (2, 2), (3, 3)]})
        assert "t" in text
        assert "o" in text
        assert "o=a" in text

    def test_multiple_series_distinct_glyphs(self):
        text = render_scatter("t", {"a": [(1, 1)], "b": [(5, 5)]})
        assert "o=a" in text and "x=b" in text

    def test_log_axes_label(self):
        text = render_scatter("t", {"a": [(1, 1), (100, 100)]},
                              log_x=True, log_y=True)
        assert "(log)" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_scatter("t", {"a": [(0, 1)]}, log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_scatter("t", {})
        with pytest.raises(ValueError):
            render_scatter("t", {"a": []})

    def test_too_small_area_rejected(self):
        with pytest.raises(ValueError):
            render_scatter("t", {"a": [(1, 1)]}, width=5)

    def test_extremes_land_at_corners(self):
        text = render_scatter("t", {"a": [(0, 0), (10, 10)]},
                              width=20, height=6)
        rows = [line for line in text.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("o")     # top-right: max point
        assert rows[-1].split("|")[1][0] == "o"   # bottom-left: min point

    def test_constant_values_handled(self):
        text = render_scatter("t", {"a": [(1, 5), (2, 5)]})
        assert "o" in text

    def test_overlap_marker(self):
        text = render_scatter("t", {"a": [(1, 1), (9, 9)],
                                    "b": [(1, 1), (9, 1)]},
                              width=12, height=4)
        assert "." in text
