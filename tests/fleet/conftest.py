"""Shared fixtures: a hand-built exec table and a small fleet config.

The synthetic table makes the heterogeneity explicit and exact: the
"A100" type runs everything 4x faster than the "GTX 1080 Ti" type, and
batch time grows affinely with batch size (so full batches amortise a
2x throughput win). Policies can be asserted against these numbers
without training any model.
"""

import numpy as np
import pytest

from repro.fleet import (
    AutoscalerConfig,
    ExecTable,
    FleetConfig,
    GPUPool,
    SLOSpec,
    WorkloadSpec,
)

NETWORKS = ("netA", "netB")
GPU_TYPES = ("A100", "GTX 1080 Ti")
SLOW_FACTOR = 4.0


def make_table(max_batch: int = 8) -> ExecTable:
    times = np.zeros((len(NETWORKS), len(GPU_TYPES), max_batch + 1))
    for n in range(len(NETWORKS)):
        base = 1000.0 * (n + 1)
        for t, mult in enumerate((1.0, SLOW_FACTOR)):
            for batch in range(1, max_batch + 1):
                times[n, t, batch] = base * mult * (0.5 + 0.5 * batch)
    return ExecTable(NETWORKS, GPU_TYPES, times)


@pytest.fixture(scope="session")
def table() -> ExecTable:
    return make_table()


@pytest.fixture()
def small_config() -> FleetConfig:
    return FleetConfig(
        pools=(GPUPool("A100", 3), GPUPool("GTX 1080 Ti", 3)),
        workload=WorkloadSpec(networks=NETWORKS, n_requests=2000,
                              target_utilization=0.6, seed=1),
        slo=SLOSpec(latency_ms=50.0),
        autoscaler=AutoscalerConfig(),
        max_batch=8,
    )
