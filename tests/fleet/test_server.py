"""Tests for the dynamic-batching fleet server."""

import numpy as np
import pytest

from repro.fleet.policies import PlacementPolicy
from repro.fleet.server import FleetServer
from repro.sim.engine import EventEngine


class _NullPolicy(PlacementPolicy):
    policy_name = ""                     # not registered on purpose

    def __init__(self):                  # no fleet needed
        pass

    def select(self, net_idx, now_us):
        raise NotImplementedError


EXEC = [[0.0, 1000.0, 1500.0, 2000.0, 2500.0],   # net 0: t(b)
        [0.0, 3000.0, 3500.0, 4000.0, 4500.0]]   # net 1
MARGINAL = [EXEC[0][4] / 4, EXEC[1][4] / 4]


def make_server(latencies, max_batch=4, timeout_us=2000.0):
    server = FleetServer(0, 0, 0, 1.0, EXEC, MARGINAL, max_batch,
                         timeout_us, latencies)
    server.policy = _NullPolicy()
    return server


class TestBatching:
    def test_single_request_waits_for_the_timeout(self):
        latencies = np.full(1, -1.0)
        engine = EventEngine()
        server = make_server(latencies)
        server.enqueue(engine, 0.0, 0, 0)
        engine.run()
        # 2000us batching delay + 1000us batch-of-one execution
        assert latencies[0] == pytest.approx(3000.0)
        assert server.batches == 1

    def test_full_batch_launches_immediately(self):
        latencies = np.full(4, -1.0)
        engine = EventEngine()
        server = make_server(latencies)
        for i in range(4):
            server.enqueue(engine, 0.0, 0, i)
        engine.run()
        assert server.batches == 1
        assert np.allclose(latencies, EXEC[0][4])

    def test_mixed_networks_never_share_a_batch(self):
        latencies = np.full(4, -1.0)
        engine = EventEngine()
        server = make_server(latencies, timeout_us=0.0)
        server.enqueue(engine, 0.0, 0, 0)
        for i, net in enumerate((1, 1, 0), start=1):
            server.enqueue(engine, 0.0, net, i)
        engine.run()
        # batch(net0 x1), then the two net-1s fuse, then the last net-0:
        # timeout 0 launches singletons whenever the server is free
        assert server.batches == 3
        assert np.all(latencies >= 0)

    def test_oldest_network_head_is_served_first(self):
        latencies = np.full(3, -1.0)
        engine = EventEngine()
        server = make_server(latencies, timeout_us=500.0)
        server.enqueue(engine, 0.0, 1, 0)        # oldest: net 1
        server.enqueue(engine, 1.0, 0, 1)
        server.enqueue(engine, 2.0, 0, 2)
        engine.run()
        # net 1 launches first (head waited longest): finishes at
        # 500 (timeout) + 3000; the net-0 pair runs after it
        assert latencies[0] == pytest.approx(3500.0)
        assert latencies[1] > latencies[0]

    def test_max_batch_respected(self):
        latencies = np.full(7, -1.0)
        engine = EventEngine()
        server = make_server(latencies, max_batch=4)
        for i in range(7):
            server.enqueue(engine, 0.0, 0, i)
        engine.run()
        assert server.batches == 2


class TestBacklogEstimate:
    def test_est_ready_tracks_the_inflight_batch(self):
        latencies = np.full(4, -1.0)
        engine = EventEngine()
        server = make_server(latencies)
        for i in range(4):
            server.enqueue(engine, 0.0, 0, i)    # launches at t=0
        assert server.busy
        # the estimate is the actual finish time of the full batch
        assert server.est_ready_us == pytest.approx(EXEC[0][4])

    def test_est_ready_adds_queued_marginals(self):
        latencies = np.full(5, -1.0)
        engine = EventEngine()
        server = make_server(latencies)
        for i in range(4):
            server.enqueue(engine, 0.0, 0, i)
        server.enqueue(engine, 0.0, 1, 4)        # queued behind the batch
        assert server.est_ready_us == pytest.approx(
            EXEC[0][4] + MARGINAL[1])

    def test_idle_reset_collapses_to_now(self):
        latencies = np.full(1, -1.0)
        engine = EventEngine()
        server = make_server(latencies, timeout_us=0.0)
        server.enqueue(engine, 0.0, 0, 0)
        end = engine.run()
        assert server.est_ready_us == end
        assert server.queued_marginal_us == 0.0
        assert not server.busy


class TestRetirement:
    def test_drain_blocks_new_work_and_finishes_old(self):
        latencies = np.full(2, -1.0)
        engine = EventEngine()
        server = make_server(latencies, timeout_us=0.0)
        server.enqueue(engine, 0.0, 0, 0)
        server.enqueue(engine, 0.0, 0, 1)
        server.drain(0.0)
        assert server.active is False
        assert server.retired_us is None          # still has work
        end = engine.run()
        assert server.retired_us == end
        assert np.all(latencies >= 0)

    def test_idle_drain_retires_immediately(self):
        server = make_server(np.empty(0))
        server.drain(123.0)
        assert server.retired_us == 123.0

    def test_active_us_bills_until_retirement(self):
        server = make_server(np.empty(0))
        server.started_us = 100.0
        assert server.active_us(1000.0) == 900.0
        server.retired_us = 600.0
        assert server.active_us(1000.0) == 500.0
