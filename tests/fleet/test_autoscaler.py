"""Tests for the reactive autoscaler, end-to-end through the simulator."""

import numpy as np
import pytest

from repro.fleet import (
    AutoscalerConfig,
    FleetConfig,
    FleetSimulator,
    GPUPool,
    SLOSpec,
    Trace,
    WorkloadSpec,
)

from .conftest import NETWORKS, make_table


def burst_trace(n_burst=120, rate_rps=4000.0, tail_gap_us=500_000.0):
    """A hard burst followed by a long quiet tail."""
    gap = 1e6 / rate_rps
    burst = np.arange(1, n_burst + 1) * gap
    tail = burst[-1] + np.arange(1, 9) * tail_gap_us
    arrivals = np.concatenate([burst, tail])
    return Trace(NETWORKS, arrivals,
                 np.zeros(len(arrivals), dtype=np.intp))


def autoscaled_config(n_requests, provision_delay_ms=50.0):
    return FleetConfig(
        pools=(GPUPool("A100", 2, min_count=1, max_count=10),),
        workload=WorkloadSpec(networks=NETWORKS, n_requests=n_requests,
                              rate_rps=1000.0, seed=1),
        slo=SLOSpec(latency_ms=50.0),
        autoscaler=AutoscalerConfig(
            enabled=True, interval_ms=20.0,
            provision_delay_ms=provision_delay_ms,
            scale_up_queue_depth=2.0, scale_down_utilization=0.4),
        max_batch=4,
    )


class TestScaleUp:
    def test_burst_grows_the_pool_after_the_delay(self):
        trace = burst_trace()
        config = autoscaled_config(len(trace))
        simulator = FleetSimulator(config, make_table(), trace=trace)
        result = simulator.run("jsq")
        assert result.scale_ups > 0
        assert result.peak_gpus > config.total_gpus
        assert result.peak_gpus <= config.pools[0].max_count

    def test_provisioning_delay_is_respected(self):
        trace = burst_trace()
        config = autoscaled_config(len(trace), provision_delay_ms=50.0)
        simulator = FleetSimulator(config, make_table(), trace=trace)
        simulator.run("jsq")
        first_up = min(t for t, _, delta in simulator.last_scale_events
                       if delta > 0)
        # the first tick fires at 20ms; provisioning adds 50ms
        assert first_up >= (20.0 + 50.0) * 1e3

    def test_quiet_tail_scales_back_down(self):
        trace = burst_trace()
        config = autoscaled_config(len(trace))
        simulator = FleetSimulator(config, make_table(), trace=trace)
        result = simulator.run("jsq")
        assert result.scale_downs > 0

    def test_disabled_autoscaler_keeps_the_pool_fixed(self):
        trace = burst_trace()
        config = FleetConfig(
            pools=(GPUPool("A100", 2),),
            workload=WorkloadSpec(networks=NETWORKS,
                                  n_requests=len(trace), rate_rps=1000.0),
            max_batch=4,
        )
        simulator = FleetSimulator(config, make_table(), trace=trace)
        result = simulator.run("jsq")
        assert result.peak_gpus == 2
        assert result.scale_ups == result.scale_downs == 0

    def test_all_requests_still_served(self):
        trace = burst_trace()
        config = autoscaled_config(len(trace))
        simulator = FleetSimulator(config, make_table(), trace=trace)
        result = simulator.run("predicted")
        assert result.n_requests == len(trace)
        assert result.slo_attainment == pytest.approx(
            result.slo_met / len(trace))
