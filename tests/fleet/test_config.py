"""Tests for the fleet configuration dataclasses."""

import pytest

from repro.fleet import (
    DEFAULT_COST_PER_HOUR,
    AutoscalerConfig,
    FleetConfig,
    GPUPool,
    SLOSpec,
    WorkloadSpec,
)


class TestGPUPool:
    def test_default_price_comes_from_the_table(self):
        pool = GPUPool("A100", 4)
        assert pool.cost_per_hour == DEFAULT_COST_PER_HOUR["A100"]

    def test_explicit_price_wins(self):
        assert GPUPool("A100", 4, cost_per_hour=9.9).cost_per_hour == 9.9

    def test_bounds_default_to_a_fixed_pool(self):
        pool = GPUPool("A40", 5)
        assert (pool.min_count, pool.max_count) == (5, 5)

    def test_validation(self):
        with pytest.raises(KeyError):
            GPUPool("H100", 1)          # not a Table-1 GPU
        with pytest.raises(ValueError):
            GPUPool("A100", 0)
        with pytest.raises(ValueError):
            GPUPool("A100", 2, min_count=3)
        with pytest.raises(ValueError):
            GPUPool("A100", 2, max_count=1)


class TestSpecs:
    def test_slo_microseconds(self):
        assert SLOSpec(latency_ms=25.0).latency_us == 25_000.0

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(networks=())
        with pytest.raises(ValueError):
            WorkloadSpec(networks=("a",), weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            WorkloadSpec(networks=("a",), arrival="bursty")
        with pytest.raises(ValueError):
            WorkloadSpec(networks=("a",), target_utilization=0.0)

    def test_autoscaler_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(interval_ms=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_down_utilization=1.0)


class TestFleetConfig:
    def _config(self, **changes):
        base = dict(
            pools=(GPUPool("A100", 2), GPUPool("V100", 3)),
            workload=WorkloadSpec(networks=("resnet18",)),
        )
        base.update(changes)
        return FleetConfig(**base)

    def test_totals_and_types(self):
        config = self._config()
        assert config.total_gpus == 5
        assert config.gpu_types == ("A100", "V100")

    def test_with_workload(self):
        config = self._config().with_workload(seed=9)
        assert config.workload.seed == 9

    def test_round_trips_through_dict(self):
        config = self._config(
            slo=SLOSpec(latency_ms=42.0),
            autoscaler=AutoscalerConfig(enabled=True),
            max_batch=4, policy_seed=3)
        assert FleetConfig.from_dict(config.to_dict()) == config

    def test_validation(self):
        with pytest.raises(ValueError):
            self._config(pools=())
        with pytest.raises(ValueError):
            self._config(max_batch=0)
