"""End-to-end tests for the fleet simulator and its report."""

import json

import numpy as np
import pytest

from repro.fleet import (
    FleetConfig,
    FleetReport,
    FleetSimulator,
    GPUPool,
    WorkloadSpec,
    policy_names,
)

from .conftest import NETWORKS, SLOW_FACTOR, make_table


class TestRun:
    def test_every_request_is_served_once(self, table, small_config):
        simulator = FleetSimulator(small_config, table)
        result = simulator.run("jsq")
        assert result.n_requests == small_config.workload.n_requests
        assert 0.0 < result.slo_attainment <= 1.0
        assert result.p50_us <= result.p99_us <= result.p999_us
        assert result.utilization <= 1.0
        assert result.cost_usd > 0

    def test_bit_reproducible_per_seed(self, table, small_config):
        first = FleetSimulator(small_config, table).run("predicted")
        second = FleetSimulator(small_config, table).run("predicted")
        assert first == second

    def test_different_seed_changes_the_trace(self, table, small_config):
        other_config = small_config.with_workload(seed=2)
        first = FleetSimulator(small_config, table).run("predicted")
        second = FleetSimulator(other_config, table).run("predicted")
        assert first != second

    def test_rate_derived_from_capacity(self, table, small_config):
        simulator = FleetSimulator(small_config, table)
        # 3 fast + 3 slow-by-4x servers at 0.6 target utilisation
        fast = table.capacity_rps(0)
        expected = 0.6 * 3 * (fast + fast / SLOW_FACTOR)
        assert simulator.offered_rate_rps == pytest.approx(expected)

    def test_explicit_rate_wins(self, table, small_config):
        config = small_config.with_workload(rate_rps=123.0)
        assert FleetSimulator(config, table).offered_rate_rps == 123.0

    def test_validation(self, table, small_config):
        with pytest.raises(KeyError):
            bad = small_config.with_workload(networks=("netA", "netZ"))
            FleetSimulator(bad, table)
        with pytest.raises(KeyError):
            pools = (GPUPool("V100", 2),)   # priced GPU, not in table
            FleetSimulator(
                FleetConfig(pools=pools,
                            workload=small_config.workload), table)
        with pytest.raises(ValueError):
            import dataclasses
            big = dataclasses.replace(small_config, max_batch=64)
            FleetSimulator(big, table)


class TestCompare:
    def test_identical_trace_across_policies(self, table, small_config):
        report = FleetSimulator(small_config, table).compare(
            ["random", "predicted"])
        assert report.policies() == ("random", "predicted")
        for result in report.results:
            assert result.n_requests == small_config.workload.n_requests

    def test_default_compares_every_registered_policy(
            self, table, small_config):
        config = small_config.with_workload(n_requests=400)
        report = FleetSimulator(config, table).compare()
        assert sorted(report.policies()) == policy_names()

    def test_predicted_beats_blind_policies(self, table, small_config):
        """The headline: heterogeneity-aware routing wins on tails."""
        config = small_config.with_workload(n_requests=4000)
        report = FleetSimulator(config, table).compare(
            ["random", "round_robin", "predicted"])
        predicted = report.result("predicted")
        for blind in ("random", "round_robin"):
            assert predicted.p99_us < report.result(blind).p99_us
        assert report.best("p99_us").policy == "predicted"


class TestReport:
    def _report(self, table, config):
        return FleetSimulator(config, table).compare(["jsq", "random"])

    def test_render_mentions_every_policy(self, table, small_config):
        rendered = self._report(table, small_config).render()
        assert "jsq" in rendered and "random" in rendered
        assert "p99" in rendered

    def test_json_round_trip(self, table, small_config):
        report = self._report(table, small_config)
        decoded = json.loads(report.to_json())
        assert {r["policy"] for r in decoded["results"]} == {
            "jsq", "random"}
        assert decoded["offered_rate_rps"] == report.offered_rate_rps

    def test_result_lookup(self, table, small_config):
        report = self._report(table, small_config)
        assert report.result("jsq").policy == "jsq"
        with pytest.raises(KeyError):
            report.result("fifo")

    def test_cost_per_slo_is_inf_when_nothing_met(self):
        from repro.fleet.report import summarize
        latencies = np.array([1e9, 2e9])
        result = summarize("x", latencies, 100.0, 0, n_requests=2,
                           initial_gpus=1, peak_gpus=1, makespan_us=2e9,
                           utilization=0.5, cost_usd=1.0, batches=2)
        assert result.cost_per_1k_slo_usd == float("inf")
        assert result.to_dict()["cost_per_1k_slo_usd"] is None

    def test_report_needs_results(self):
        with pytest.raises(ValueError):
            FleetReport((), "fleet", 1.0)
