"""Tests for the ahead-of-time execution-time table."""

import numpy as np
import pytest

from repro.fleet import ExecTable

from .conftest import GPU_TYPES, NETWORKS, SLOW_FACTOR, make_table


class TestExecTable:
    def test_lookup_matches_the_source_array(self, table):
        assert table.us(0, 0, 1) == 1000.0
        assert table.us(0, 1, 1) == 1000.0 * SLOW_FACTOR
        assert table.us(1, 0, 8) == 2000.0 * 4.5

    def test_rows_for_type(self, table):
        rows = table.rows_for_type(0)
        assert len(rows) == len(NETWORKS)
        assert rows[0][4] == table.us(0, 0, 4)

    def test_marginal_is_full_batch_amortised(self, table):
        marginal = table.marginal_us()
        assert marginal[0][0] == table.us(0, 0, 8) / 8
        assert marginal[1][1] == table.us(1, 1, 8) / 8

    def test_indices_raise_keyerror_with_choices(self, table):
        assert table.type_index("A100") == 0
        assert table.network_index("netB") == 1
        with pytest.raises(KeyError):
            table.type_index("V100")
        with pytest.raises(KeyError):
            table.network_index("vgg16")

    def test_capacity_scales_with_speed(self, table):
        fast = table.capacity_rps(0)
        slow = table.capacity_rps(1)
        assert fast == pytest.approx(SLOW_FACTOR * slow)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecTable(NETWORKS, GPU_TYPES, np.ones((2, 2)))
        with pytest.raises(ValueError):
            ExecTable(NETWORKS, GPU_TYPES, np.ones((3, 2, 9)))
        bad = np.ones((2, 2, 9))
        bad[0, 0, 3] = 0.0
        with pytest.raises(ValueError):
            ExecTable(NETWORKS, GPU_TYPES, bad)


class _GridPlan:
    def __init__(self, base_us):
        self.base_us = base_us

    def evaluate_grid(self, specs):
        times = np.array([self.base_us * (i + 1)
                          for i in range(len(specs))])
        return times, np.zeros(len(specs))


class _GridModel:
    """Stub retargetable model: one evaluate_grid call per compile."""

    def __init__(self):
        self.compiled = []

    def compile(self, network, batch):
        self.compiled.append((network.name, batch))
        return _GridPlan(100.0 * batch)


class TestFromModel:
    def test_one_compile_per_network_and_batch(self):
        from repro.gpu.specs import gpu
        from repro.zoo import build

        model = _GridModel()
        networks = [build("resnet18"), build("mobilenet_v2")]
        specs = [gpu("A100"), gpu("A40")]
        table = ExecTable.from_model(model, networks, specs, max_batch=4)
        assert len(model.compiled) == len(networks) * 4
        # the grid's per-spec ordering lands in type order
        assert table.us(0, 0, 2) == 200.0
        assert table.us(0, 1, 2) == 400.0
        assert table.gpu_types == ("A100", "A40")

    def test_per_gpu_model_mapping(self):
        from repro.gpu.specs import gpu
        from repro.zoo import build

        class _Plan:
            def __init__(self, value):
                self.value = value

            def evaluate(self):
                return self.value

        class _Single:
            def __init__(self, scale):
                self.scale = scale

            def compile(self, network, batch):
                return _Plan(self.scale * batch)

        networks = [build("resnet18")]
        specs = [gpu("A100"), gpu("A40")]
        table = ExecTable.from_model(
            {"A100": _Single(10.0), "A40": _Single(30.0)},
            networks, specs, max_batch=2)
        assert table.us(0, 0, 2) == 20.0
        assert table.us(0, 1, 2) == 60.0
        with pytest.raises(KeyError):
            ExecTable.from_model({"A100": _Single(1.0)}, networks,
                                 specs, max_batch=2)
