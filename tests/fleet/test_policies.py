"""Tests for the placement-policy registry and the policies themselves.

Policies only read a few server attributes (``waiting``, ``bucket``,
``est_ready_us``, ``pool_idx``, ``active``) and a few fleet attributes,
so these tests drive them with bare stubs — no engine, no simulator —
and assert the routing decisions against hand-computable state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.policies import (
    PlacementPolicy,
    make_policy,
    policy_names,
    register_policy,
)


class _Server:
    def __init__(self, pool_idx=0, est_ready_us=0.0):
        self.pool_idx = pool_idx
        self.est_ready_us = est_ready_us
        self.waiting = 0
        self.bucket = 0
        self.active = True


class _Fleet:
    def __init__(self, servers, n_pools=1, marginal=None,
                 costs=None, slo_us=100_000.0, seed=0):
        self.active_servers = list(servers)
        self.pools = list(range(n_pools))
        self.marginal_us = marginal if marginal is not None else [
            [100.0] * n_pools]
        self.pool_cost_per_hour = costs or [1.0] * n_pools
        self.slo_us = slo_us
        self.policy_seed = seed


class TestRegistry:
    def test_known_policies(self):
        assert policy_names() == ["cost", "jsq", "least_finish",
                                  "predicted", "random", "round_robin"]

    def test_unknown_policy_raises_with_choices(self):
        with pytest.raises(KeyError, match="least_finish"):
            make_policy("fifo", _Fleet([_Server()]))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            @register_policy
            class Clone(PlacementPolicy):          # noqa: F811
                policy_name = "random"

                def select(self, net_idx, now_us):
                    raise NotImplementedError


class TestSimplePolicies:
    def test_random_is_seeded(self):
        servers = [_Server() for _ in range(8)]
        policy_a = make_policy("random", _Fleet(servers, seed=5))
        policy_b = make_policy("random", _Fleet(servers, seed=5))
        policy_c = make_policy("random", _Fleet(servers, seed=6))
        seq_a = [servers.index(policy_a.select(0, 0.0))
                 for _ in range(30)]
        seq_b = [servers.index(policy_b.select(0, 0.0))
                 for _ in range(30)]
        seq_c = [servers.index(policy_c.select(0, 0.0))
                 for _ in range(30)]
        assert seq_a == seq_b
        assert seq_a != seq_c
        assert len(set(seq_a)) > 1

    def test_round_robin_cycles(self):
        servers = [_Server() for _ in range(3)]
        policy = make_policy("round_robin", _Fleet(servers))
        picked = [policy.select(0, 0.0) for _ in range(6)]
        assert picked == servers + servers


class TestJSQ:
    def _policy(self, servers):
        return make_policy("jsq", _Fleet(servers))

    def test_picks_the_shortest_queue(self):
        servers = [_Server() for _ in range(3)]
        policy = self._policy(servers)
        servers[0].waiting = 2
        policy.note_enqueue(servers[0])
        policy.note_enqueue(servers[0])
        servers[1].waiting = 1
        policy.note_enqueue(servers[1])
        assert policy.select(0, 0.0) is servers[2]

    def test_removed_server_is_never_picked(self):
        servers = [_Server(), _Server()]
        policy = self._policy(servers)
        servers[0].active = False
        policy.note_removed(servers[0])
        for _ in range(5):
            assert policy.select(0, 0.0) is servers[1]

    @given(st.lists(st.integers(min_value=0, max_value=11),
                    min_size=1, max_size=80),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_never_routes_past_a_shorter_queue(self, ops, n_servers):
        """The JSQ invariant, under arbitrary enqueue/launch interleaving:
        the chosen server's queue is a global minimum at decision time."""
        servers = [_Server() for _ in range(n_servers)]
        policy = self._policy(servers)
        for op in ops:
            chosen = policy.select(0, 0.0)
            shortest = min(server.waiting for server in servers)
            assert chosen.waiting == shortest
            chosen.waiting += 1
            policy.note_enqueue(chosen)
            target = servers[op % n_servers]
            if op % 3 == 0 and target.waiting:
                # a batch launch drains some of the target's queue
                target.waiting -= 1 + op % target.waiting
                policy.note_launch(target)


class TestEstReadyHeapPolicies:
    def test_least_finish_picks_earliest_ready(self):
        servers = [_Server(est_ready_us=t) for t in (300.0, 100.0, 200.0)]
        policy = make_policy("least_finish", _Fleet(servers))
        assert policy.select(0, 0.0) is servers[1]

    def test_stale_entries_are_skipped(self):
        servers = [_Server(est_ready_us=100.0), _Server(est_ready_us=200.0)]
        policy = make_policy("least_finish", _Fleet(servers))
        servers[0].est_ready_us = 900.0      # got loaded since
        policy.note_enqueue(servers[0])
        assert policy.select(0, 0.0) is servers[1]

    def test_predicted_weighs_per_pool_run_time(self):
        # pool 0 is busy but fast; pool 1 idle but 10x slower on net 0
        servers = [_Server(pool_idx=0, est_ready_us=500.0),
                   _Server(pool_idx=1, est_ready_us=0.0)]
        marginal = [[100.0, 1000.0]]
        policy = make_policy("predicted", _Fleet(
            servers, n_pools=2, marginal=marginal))
        # eta(fast) = 500 + 100 = 600 < eta(slow) = 0 + 1000
        assert policy.select(0, 0.0) is servers[0]
        # ...until the fast backlog overtakes the slow run time
        servers[0].est_ready_us = 2000.0
        policy.note_enqueue(servers[0])
        assert policy.select(0, 0.0) is servers[1]

    def test_cost_prefers_cheapest_slo_feasible_pool(self):
        servers = [_Server(pool_idx=0), _Server(pool_idx=1)]
        marginal = [[100.0, 400.0]]
        fleet = _Fleet(servers, n_pools=2, marginal=marginal,
                       costs=[3.0, 0.35], slo_us=100_000.0)
        policy = make_policy("cost", fleet)
        # both feasible: $0.35 * 400 < $3.0 * 100 -> the slow cheap pool
        assert policy.select(0, 0.0) is servers[1]

    def test_cost_falls_back_to_predicted_when_infeasible(self):
        servers = [_Server(pool_idx=0, est_ready_us=90_000.0),
                   _Server(pool_idx=1, est_ready_us=99_000.0)]
        marginal = [[100.0, 400.0]]
        fleet = _Fleet(servers, n_pools=2, marginal=marginal,
                       costs=[3.0, 0.35], slo_us=100.0)
        policy = make_policy("cost", fleet)
        # nothing meets the (tiny) SLO: minimise completion time instead
        assert policy.select(0, 0.0) is servers[0]
