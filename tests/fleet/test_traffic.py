"""Tests for the seeded fleet trace generators."""

import numpy as np
import pytest

from repro.fleet import diurnal_trace, generate_trace, poisson_trace
from repro.fleet.config import WorkloadSpec

NETS = ("netA", "netB", "netC")


class TestPoissonTrace:
    def test_shape_and_monotonicity(self):
        trace = poisson_trace(NETS, 1000.0, 5000, seed=1)
        assert len(trace) == 5000
        assert np.all(np.diff(trace.arrivals_us) >= 0)
        assert trace.arrivals_us[0] > 0

    def test_rate_roughly_respected(self):
        trace = poisson_trace(NETS, 2000.0, 20_000, seed=2)
        assert trace.mean_rate_rps == pytest.approx(2000.0, rel=0.05)

    def test_deterministic_per_seed(self):
        first = poisson_trace(NETS, 100.0, 500, seed=3)
        second = poisson_trace(NETS, 100.0, 500, seed=3)
        other = poisson_trace(NETS, 100.0, 500, seed=4)
        assert np.array_equal(first.arrivals_us, second.arrivals_us)
        assert np.array_equal(first.network_idx, second.network_idx)
        assert not np.array_equal(first.arrivals_us, other.arrivals_us)

    def test_mix_follows_weights(self):
        trace = poisson_trace(NETS, 100.0, 30_000, weights=(6, 3, 1),
                              seed=5)
        counts = trace.network_counts()
        assert sum(counts) == 30_000
        assert counts[0] == pytest.approx(18_000, rel=0.1)
        assert counts[2] == pytest.approx(3_000, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_trace((), 10.0, 5)
        with pytest.raises(ValueError):
            poisson_trace(NETS, 0.0, 5)
        with pytest.raises(ValueError):
            poisson_trace(NETS, 10.0, 0)
        with pytest.raises(ValueError):
            poisson_trace(NETS, 10.0, 5, weights=(1.0,))


class TestDiurnalTrace:
    def test_mean_rate_close_to_nominal(self):
        trace = diurnal_trace(NETS, 2000.0, 40_000, amplitude=0.6,
                              period_s=5.0, seed=1)
        assert trace.mean_rate_rps == pytest.approx(2000.0, rel=0.1)

    def test_rate_is_modulated(self):
        """Peak-phase windows hold visibly more arrivals than troughs."""
        period_s = 10.0
        trace = diurnal_trace(NETS, 2000.0, 60_000, amplitude=0.8,
                              period_s=period_s, seed=2)
        phase = (trace.arrivals_us / 1e6) % period_s / period_s
        # sin peaks at phase 0.25, bottoms at 0.75
        peak = int(((phase > 0.15) & (phase < 0.35)).sum())
        trough = int(((phase > 0.65) & (phase < 0.85)).sum())
        assert peak > 2 * trough

    def test_deterministic_per_seed(self):
        first = diurnal_trace(NETS, 500.0, 2000, seed=7)
        second = diurnal_trace(NETS, 500.0, 2000, seed=7)
        assert np.array_equal(first.arrivals_us, second.arrivals_us)
        assert np.array_equal(first.network_idx, second.network_idx)

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_trace(NETS, 100.0, 10, amplitude=1.0)
        with pytest.raises(ValueError):
            diurnal_trace(NETS, 100.0, 10, period_s=0.0)


class TestGenerateTrace:
    def test_dispatches_on_arrival_kind(self):
        poisson = generate_trace(
            WorkloadSpec(networks=NETS, n_requests=100, seed=1), 500.0)
        diurnal = generate_trace(
            WorkloadSpec(networks=NETS, n_requests=100, seed=1,
                         arrival="diurnal"), 500.0)
        assert len(poisson) == len(diurnal) == 100
        assert not np.array_equal(poisson.arrivals_us,
                                  diurnal.arrivals_us)
