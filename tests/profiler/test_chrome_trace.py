"""Tests for Chrome trace export (PyTorch Profiler interchange format)."""

import json

import pytest

from repro.gpu import SimulatedGPU, gpu
from repro.profiler import profile_network
from repro.zoo import resnet18


@pytest.fixture(scope="module")
def trace():
    return profile_network(SimulatedGPU(gpu("A100")), resnet18(), 8)


class TestChromeTrace:
    def test_event_counts(self, trace):
        events = trace.to_chrome_trace()
        duration_events = [e for e in events if e["ph"] == "X"]
        assert len(duration_events) == (len(trace.layer_events)
                                        + len(trace.kernel_events))

    def test_two_named_threads(self, trace):
        events = trace.to_chrome_trace()
        thread_names = {e["args"]["name"] for e in events
                        if e["name"] == "thread_name"}
        assert thread_names == {"CPU (layers)", "GPU (kernels)"}

    def test_kernels_on_gpu_thread(self, trace):
        events = trace.to_chrome_trace()
        kernels = [e for e in events if e.get("cat") == "kernel"]
        assert kernels
        assert all(e["tid"] == 1 for e in kernels)
        assert all("layer" in e["args"] for e in kernels)

    def test_layer_events_carry_shapes_and_flops(self, trace):
        events = trace.to_chrome_trace()
        layers = [e for e in events
                  if e["ph"] == "X" and e["tid"] == 0]
        assert all("input_shape" in e["args"] for e in layers)
        assert all(e["args"]["flops"] >= 0 for e in layers)

    def test_durations_nonnegative_and_sorted(self, trace):
        events = [e for e in trace.to_chrome_trace() if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in events)

    def test_save_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        trace.save_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded
        assert len(loaded["traceEvents"]) == len(trace.to_chrome_trace())
