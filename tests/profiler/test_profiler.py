"""Tests for the profiler substrate (traces and CUDA-event timing)."""

import pytest

from repro.profiler import (
    batch_sweep,
    measure_e2e,
    profile_network,
    trace_from_result,
)
from repro.zoo import resnet18, squeezenet


@pytest.fixture(scope="module")
def trace(a100_module):
    return profile_network(a100_module, resnet18(), 8)


@pytest.fixture(scope="module")
def a100_module():
    from repro.gpu import SimulatedGPU, gpu
    return SimulatedGPU(gpu("A100"))


class TestTraceStructure:
    def test_two_tracks_populated(self, trace):
        assert len(trace.layer_events) > 0
        assert len(trace.kernel_events) > 0

    def test_kernels_attributed_to_layers(self, trace):
        layer_names = {event.name for event in trace.layer_events}
        for kernel in trace.kernel_events:
            assert kernel.layer_name in layer_names

    def test_timeline_monotone(self, trace):
        starts = [event.start_us for event in trace.kernel_events]
        assert starts == sorted(starts)

    def test_no_kernel_overlap(self, trace):
        events = trace.kernel_events
        for first, second in zip(events, events[1:]):
            assert second.start_us >= first.end_us - 1e-9

    def test_layer_spans_cover_kernels(self, trace):
        mapping = trace.layer_to_kernels()
        for layer in trace.layer_events:
            for kernel in mapping[layer.name]:
                assert layer.start_us <= kernel.start_us
                assert kernel.end_us <= layer.end_us + 1e-9

    def test_layer_duration_first_to_last_kernel(self, trace):
        """The paper computes layer time from kernel start/end stamps."""
        mapping = trace.layer_to_kernels()
        for name, kernels in mapping.items():
            if kernels:
                expected = (max(k.end_us for k in kernels)
                            - min(k.start_us for k in kernels))
                assert trace.layer_duration_us(name) == pytest.approx(
                    expected)

    def test_layer_duration_unknown_layer(self, trace):
        with pytest.raises(KeyError):
            trace.layer_duration_us("not_a_layer")

    def test_kernel_names_sorted_unique(self, trace):
        names = trace.kernel_names()
        assert names == sorted(set(names))

    def test_render_mentions_network(self, trace):
        assert "resnet18" in trace.render()

    def test_zero_kernel_layers_have_zero_duration(self, a100_module):
        trace = profile_network(a100_module, resnet18(), 2)
        flatten_layers = [e.name for e in trace.layer_events
                          if e.kind == "Flatten"]
        assert flatten_layers
        assert trace.layer_duration_us(flatten_layers[0]) == 0.0


class TestE2EMeasurement:
    def test_measure_metadata(self, a100_module):
        m = measure_e2e(a100_module, squeezenet(), 16)
        assert m.network_name == "squeezenet1_1"
        assert m.gpu_name == "A100"
        assert m.batches_measured == 30
        assert m.mean_ms == m.mean_us / 1e3
        assert m.per_image_us == m.mean_us / 16

    def test_batch_sweep_lengths(self, a100_module):
        sweep = batch_sweep(a100_module, squeezenet(), [2, 8, 32])
        assert [m.batch_size for m in sweep] == [2, 8, 32]
        times = [m.mean_us for m in sweep]
        assert times == sorted(times)   # more work never takes less time

    def test_trace_and_event_times_agree(self, a100_module):
        trace = profile_network(a100_module, squeezenet(), 16)
        event = measure_e2e(a100_module, squeezenet(), 16)
        assert trace.e2e_us == pytest.approx(event.mean_us)
