"""Correction regression, exact per-kind folding, and warm-started refits."""

from __future__ import annotations

import pytest

from repro.calibration import (
    NETWORK_GROUP,
    POOLED,
    STATS_KEY,
    FeedbackObservation,
    apply_correction,
    correction_from_stats,
    incremental_refit,
    observe_correction,
    stats_from_document,
    stats_to_document,
    transform_stats_x,
)
from repro.core.linreg import LinearFit
from repro.core.online import OnlineLinearFit
from repro.core.persistence import model_from_dict, model_to_dict
from repro.core.workflow import train_inter_gpu_model, train_model
from repro.gpu import gpu

SCALE = LinearFit(1.3, 0.0, 1.0, 4)


def obs(predicted, measured, group=NETWORK_GROUP):
    return FeedbackObservation(model="m", network="n", batch_size=64,
                               gpu=None, predicted_us=predicted,
                               measured_us=measured, group=group)


class TestObserveCorrection:
    def test_feeds_group_and_pooled(self):
        stats = {}
        n = observe_correction(stats, [obs(100.0, 130.0, group="a"),
                                       obs(200.0, 260.0, group="b")])
        assert n == 2
        assert stats["a"].n == 1
        assert stats["b"].n == 1
        assert stats[POOLED].n == 2

    def test_weight_is_inverse_square_measured(self):
        stats = {}
        observe_correction(stats, [obs(100.0, 200.0)])
        assert stats[POOLED].w_sum == pytest.approx(1.0 / 200.0 ** 2)


class TestCorrectionFromStats:
    def test_e2e_takes_affine(self):
        stats = {}
        # y = 2x + 10 exactly
        observe_correction(stats, [obs(x, 2.0 * x + 10.0)
                                   for x in (50.0, 100.0, 200.0)])
        line = correction_from_stats(stats, "e2e")
        assert line.slope == pytest.approx(2.0)
        assert line.intercept == pytest.approx(10.0)

    def test_other_kinds_take_through_origin(self):
        stats = {}
        observe_correction(stats, [obs(x, 1.5 * x)
                                   for x in (50.0, 100.0, 200.0)])
        line = correction_from_stats(stats, "kw")
        assert line.slope == pytest.approx(1.5)
        assert line.intercept == 0.0
        assert line.r2 == pytest.approx(1.0)

    def test_empty_stats_raise(self):
        with pytest.raises(ValueError, match="no correction statistics"):
            correction_from_stats({}, "kw")


class TestApplyCorrection:
    """The folded candidate predicts correction(incumbent) exactly."""

    def networks(self, roster_index):
        return list(roster_index.values())[:3]

    def test_e2e_affine(self, small_dataset, roster_index):
        model = train_model(small_dataset, "e2e", gpu="A100", batch_size=64)
        correction = LinearFit(1.3, 25.0, 1.0, 4)
        folded = model_from_dict(
            apply_correction(model_to_dict(model), correction))
        for network in self.networks(roster_index):
            base = model.predict_network(network, 64)
            assert folded.predict_network(network, 64) == pytest.approx(
                1.3 * base + 25.0)

    @pytest.mark.parametrize("kind", ["lw", "kw"])
    def test_single_gpu_kinds_scale(self, small_dataset, roster_index, kind):
        model = train_model(small_dataset, kind, gpu="A100", batch_size=64)
        folded = model_from_dict(
            apply_correction(model_to_dict(model), SCALE))
        for network in self.networks(roster_index):
            assert folded.predict_network(network, 64) == pytest.approx(
                1.3 * model.predict_network(network, 64))

    def test_igkw_scales_on_unseen_gpu(self, small_dataset, roster_index):
        model = train_inter_gpu_model(
            small_dataset, [gpu("A100"), gpu("TITAN RTX")], batch_size=64)
        folded = model_from_dict(
            apply_correction(model_to_dict(model), SCALE))
        target = gpu("V100")       # retarget path, not a training GPU
        for network in self.networks(roster_index):
            base = model.for_gpu(target).predict_network(network, 64)
            assert folded.for_gpu(target).predict_network(
                network, 64) == pytest.approx(1.3 * base)

    def test_rejects_non_positive_scale(self, small_dataset):
        document = model_to_dict(
            train_model(small_dataset, "lw", gpu="A100", batch_size=64))
        with pytest.raises(ValueError, match="must be positive"):
            apply_correction(document, LinearFit(-0.5, 0.0, 0.0, 1))

    def test_rejects_intercept_for_summed_kinds(self, small_dataset):
        document = model_to_dict(
            train_model(small_dataset, "lw", gpu="A100", batch_size=64))
        with pytest.raises(ValueError, match="through-origin"):
            apply_correction(document, LinearFit(1.2, 5.0, 0.0, 1))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            apply_correction({"kind": "mystery"}, SCALE)


class TestTransformStats:
    def test_matches_reobserving_transformed_x(self):
        pairs = [(50.0, 120.0, 1.0), (100.0, 260.0, 0.5),
                 (200.0, 510.0, 0.25)]
        acc = OnlineLinearFit()
        direct = OnlineLinearFit()
        a, b = 1.3, 25.0
        for x, y, w in pairs:
            acc.observe(x, y, weight=w)
            direct.observe(a * x + b, y, weight=w)
        moved = transform_stats_x({"g": acc}, LinearFit(a, b, 1.0, 3))["g"]
        for field, expected in direct.state_dict().items():
            assert moved.state_dict()[field] == pytest.approx(expected)

    def test_refit_on_transformed_stats_is_identity(self):
        stats = {}
        observe_correction(stats, [obs(x, 2.0 * x + 10.0)
                                   for x in (50.0, 100.0, 200.0)])
        correction = correction_from_stats(stats, "e2e")
        moved = transform_stats_x(stats, correction)
        line = correction_from_stats(moved, "e2e")
        assert line.slope == pytest.approx(1.0)
        assert line.intercept == pytest.approx(0.0, abs=1e-9)


class TestIncrementalRefit:
    def test_refit_needs_observations(self, small_dataset):
        document = model_to_dict(
            train_model(small_dataset, "kw", gpu="A100", batch_size=64))
        with pytest.raises(ValueError, match="at least one"):
            incremental_refit(document, [])

    def test_candidate_learns_the_scale(self, kw_model, shifted_obs):
        result = incremental_refit(model_to_dict(kw_model),
                                   list(shifted_obs))
        # the substrate ran 1.5x slower on the memory-bound share of the
        # time, so the learned scale lands between 1 and 1.5
        assert 1.0 < result.correction.slope < 1.5
        assert result.n_new == len(shifted_obs)
        assert result.n_total == result.n_new
        assert STATS_KEY not in result.document
        assert result.model.predict_network is not None

    def test_warm_start_merges_persisted_stats(self, kw_model, shifted_obs):
        document = model_to_dict(kw_model)
        first = incremental_refit(document, list(shifted_obs))
        versioned = dict(first.document,
                         **{STATS_KEY: stats_to_document(first.stats)})
        again = incremental_refit(versioned, list(shifted_obs)[:4])
        assert again.n_new == 4
        assert again.n_total == first.n_total + 4

    def test_chained_refit_converges(self, kw_model, shifted_obs,
                                     roster_index):
        """Version n+1 must not re-apply version n's correction."""
        document = model_to_dict(kw_model)
        first = incremental_refit(document, list(shifted_obs))
        versioned = dict(first.document,
                         **{STATS_KEY: stats_to_document(first.stats)})
        # feed the SAME shifted truth again: the candidate already fits
        # it, so the second correction must be ~identity
        second_window = [
            FeedbackObservation(model=o.model, network=o.network,
                                batch_size=o.batch_size, gpu=o.gpu,
                                predicted_us=first.model.predict_network(
                                    roster_index[o.network], o.batch_size),
                                measured_us=o.measured_us, group=o.group)
            for o in shifted_obs
        ]
        second = incremental_refit(versioned, second_window)
        assert second.correction.slope == pytest.approx(1.0, abs=0.02)

    def test_extra_stats_seed_the_pool(self, kw_model, shifted_obs,
                                       baseline_obs):
        document = model_to_dict(kw_model)
        seed = {}
        observe_correction(seed, list(baseline_obs))
        seeded = incremental_refit(document, list(shifted_obs),
                                   extra_stats=seed)
        plain = incremental_refit(document, list(shifted_obs))
        assert seeded.n_total == plain.n_total + len(baseline_obs)
        # baseline pairs say "no shift", dragging the scale toward 1
        assert seeded.correction.slope < plain.correction.slope


class TestStatsSerialisation:
    def test_roundtrip_is_exact(self):
        stats = {}
        observe_correction(stats, [obs(100.0, 130.0), obs(50.0, 66.0)])
        revived = stats_from_document(
            {STATS_KEY: stats_to_document(stats)})
        assert set(revived) == set(stats)
        assert all(revived[g].state_dict() == stats[g].state_dict()
                   for g in stats)

    def test_document_without_stats_revives_empty(self):
        assert stats_from_document({}) == {}


class TestFitThroughOrigin:
    def test_exact_line(self):
        acc = OnlineLinearFit()
        for x in (1.0, 2.0, 3.0):
            acc.observe(x, 2.0 * x)
        line = acc.fit_through_origin()
        assert line.slope == pytest.approx(2.0)
        assert line.intercept == 0.0
        assert line.r2 == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            OnlineLinearFit().fit_through_origin()
