"""Calibration fixtures: a KW incumbent and a drifted substrate."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.calibration.demo import observations_from_rows
from repro.core.workflow import train_model
from repro.dataset import build_dataset
from repro.gpu import gpu
from repro.gpu.timing import DEFAULT_TIMING

#: Injected degradation of the memory-bandwidth efficiency.
SHIFT = 1.5

#: Hosted name the incumbent goes by in these tests.
MODEL_NAME = "kw-a100"


@pytest.fixture(scope="session")
def kw_model(small_dataset):
    """The incumbent: KW trained on the healthy A100 substrate."""
    return train_model(small_dataset, "kw", gpu="A100", batch_size=64)


@pytest.fixture(scope="session")
def baseline_64(a100_dataset):
    return a100_dataset.at_batch(64)


@pytest.fixture(scope="session")
def shifted_64(small_roster):
    """The same campaign re-measured after a bandwidth regression."""
    config = replace(
        DEFAULT_TIMING,
        bandwidth_efficiency=DEFAULT_TIMING.bandwidth_efficiency / SHIFT)
    return build_dataset(small_roster, [gpu("A100")], batch_sizes=(64,),
                         config=config)


@pytest.fixture(scope="session")
def baseline_obs(kw_model, baseline_64, roster_index):
    return observations_from_rows(MODEL_NAME, kw_model, baseline_64,
                                  roster_index)


@pytest.fixture(scope="session")
def shifted_obs(kw_model, shifted_64, roster_index):
    return observations_from_rows(MODEL_NAME, kw_model, shifted_64,
                                  roster_index)
