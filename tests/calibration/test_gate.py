"""Shadow gate: candidates must beat the incumbent on the live window."""

from __future__ import annotations

import math

import pytest

from repro.calibration import (
    NETWORK_GROUP,
    FeedbackObservation,
    GateConfig,
    ShadowGate,
)
from repro.core.workflow import train_inter_gpu_model
from repro.gpu import gpu


class StubModel:
    """Predicts scale * measured for whatever the window holds."""

    def __init__(self, by_network):
        self.by_network = by_network

    def predict_network(self, network, batch_size):
        return self.by_network[network]


def builder(name):
    # the gate only passes the built object back to the model; a string
    # key is all the stubs need
    return name


def window(measured_by_network):
    return [FeedbackObservation(model="m", network=name, batch_size=64,
                                gpu=None, predicted_us=1.0,
                                measured_us=measured, group=NETWORK_GROUP)
            for name, measured in measured_by_network.items()]


def stub(measured_by_network, scale):
    return StubModel({name: scale * measured
                      for name, measured in measured_by_network.items()})


MEASURED = {f"net{i}": 100.0 * (i + 1) for i in range(10)}


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"min_samples": 0}, {"min_improvement": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GateConfig(**kwargs)


class TestMape:
    def test_is_mean_relative_error(self):
        gate = ShadowGate(network_builder=builder)
        assert gate.mape(stub(MEASURED, 1.1),
                         window(MEASURED)) == pytest.approx(0.1)

    def test_empty_window_raises(self):
        with pytest.raises(ValueError, match="empty window"):
            ShadowGate(network_builder=builder).mape(stub(MEASURED, 1.0), [])

    def test_networks_are_built_once(self):
        calls = []

        def counting(name):
            calls.append(name)
            return name

        gate = ShadowGate(network_builder=counting)
        gate.mape(stub(MEASURED, 1.0), window(MEASURED) * 3)
        assert sorted(calls) == sorted(MEASURED)


class TestEvaluate:
    def test_refuses_thin_windows(self):
        gate = ShadowGate(GateConfig(min_samples=8), network_builder=builder)
        decision = gate.evaluate(stub(MEASURED, 1.2), stub(MEASURED, 1.0),
                                 window(MEASURED)[:3])
        assert not decision.promote
        assert decision.n_samples == 3
        assert math.isnan(decision.incumbent_mape)
        assert math.isnan(decision.candidate_mape)
        assert "needs >= 8" in decision.reason

    def test_promotes_a_better_candidate(self):
        gate = ShadowGate(network_builder=builder)
        decision = gate.evaluate(stub(MEASURED, 1.3), stub(MEASURED, 1.05),
                                 window(MEASURED))
        assert decision.promote
        assert decision.incumbent_mape == pytest.approx(0.3)
        assert decision.candidate_mape == pytest.approx(0.05)
        assert "beats" in decision.reason

    def test_rejects_a_worse_candidate(self):
        gate = ShadowGate(network_builder=builder)
        decision = gate.evaluate(stub(MEASURED, 1.05), stub(MEASURED, 1.3),
                                 window(MEASURED))
        assert not decision.promote

    def test_equal_mape_is_rejected(self):
        """Improvement must be strict: ties keep the incumbent."""
        gate = ShadowGate(network_builder=builder)
        decision = gate.evaluate(stub(MEASURED, 1.1), stub(MEASURED, 1.1),
                                 window(MEASURED))
        assert not decision.promote

    def test_min_improvement_margin(self):
        gate = ShadowGate(GateConfig(min_improvement=0.1),
                          network_builder=builder)
        decision = gate.evaluate(stub(MEASURED, 1.15), stub(MEASURED, 1.10),
                                 window(MEASURED))
        assert not decision.promote          # improved, but only by 0.05
        decision = gate.evaluate(stub(MEASURED, 1.30), stub(MEASURED, 1.05),
                                 window(MEASURED))
        assert decision.promote

    def test_incumbent_mape_passthrough(self):
        gate = ShadowGate(network_builder=builder)
        decision = gate.evaluate(stub(MEASURED, 1.3), stub(MEASURED, 1.05),
                                 window(MEASURED), incumbent_mape=0.02)
        assert not decision.promote          # caller's score wins
        assert decision.incumbent_mape == pytest.approx(0.02)

    def test_describe_is_json_ready(self):
        gate = ShadowGate(network_builder=builder)
        decision = gate.evaluate(stub(MEASURED, 1.3), stub(MEASURED, 1.05),
                                 window(MEASURED))
        described = decision.describe()
        assert described["promote"] is True
        assert set(described) == {"promote", "incumbent_mape",
                                  "candidate_mape", "n_samples", "reason"}


class TestIGKWPath:
    @pytest.fixture(scope="class")
    def igkw(self, small_dataset):
        return train_inter_gpu_model(
            small_dataset, [gpu("A100"), gpu("TITAN RTX")], batch_size=64)

    def test_retargets_per_observation(self, igkw, baseline_64,
                                       roster_index):
        gate = ShadowGate()
        rows = baseline_64.network_rows[:4]
        obs = [FeedbackObservation(model="igkw", network=row.network,
                                   batch_size=64, gpu=row.gpu,
                                   predicted_us=1.0,
                                   measured_us=row.e2e_us,
                                   group=NETWORK_GROUP)
               for row in rows]
        # trained on this GPU: replay error should be small
        assert gate.mape(igkw, obs) < 0.25

    def test_missing_gpu_raises(self, igkw):
        gate = ShadowGate()
        observation = FeedbackObservation(model="igkw", network="resnet18",
                                          batch_size=64, gpu=None,
                                          predicted_us=1.0, measured_us=1.0,
                                          group=NETWORK_GROUP)
        with pytest.raises(ValueError, match="lacks the target"):
            gate.mape(igkw, [observation])
