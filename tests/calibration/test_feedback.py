"""FeedbackObservation and the bounded, thread-safe FeedbackLog."""

from __future__ import annotations

import threading

import pytest

from repro.calibration import NETWORK_GROUP, FeedbackLog, FeedbackObservation


def obs(model="m", network="resnet18", batch_size=64, gpu=None,
        predicted=100.0, measured=125.0, group=NETWORK_GROUP):
    return FeedbackObservation(model=model, network=network,
                               batch_size=batch_size, gpu=gpu,
                               predicted_us=predicted, measured_us=measured,
                               group=group)


class TestObservation:
    def test_ratio_and_error(self):
        o = obs(predicted=100.0, measured=125.0)
        assert o.ratio == pytest.approx(1.25)
        assert o.error == pytest.approx(0.2)   # |100/125 - 1|

    def test_key_is_model_and_group(self):
        assert obs(model="a", group="g").key() == ("a", "g")

    @pytest.mark.parametrize("kwargs", [
        {"predicted": 0.0}, {"predicted": -1.0},
        {"measured": 0.0}, {"measured": -5.0},
        {"batch_size": 0},
    ])
    def test_rejects_non_positive_fields(self, kwargs):
        with pytest.raises(ValueError):
            obs(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            obs().measured_us = 1.0


class TestFeedbackLog:
    def test_window_bounds_per_group(self):
        log = FeedbackLog(window=4)
        for i in range(6):
            log.record(obs(predicted=100.0 + i))
        window = log.window_for("m")
        assert len(window) == 4
        # the two oldest fell off the ring
        assert [o.predicted_us for o in window] == [102.0, 103.0,
                                                    104.0, 105.0]

    def test_groups_are_isolated(self):
        log = FeedbackLog(window=2)
        log.record(obs(group="a"))
        log.record(obs(group="a"))
        log.record(obs(group="b"))
        assert len(log.window_for("m", "a")) == 2
        assert len(log.window_for("m", "b")) == 1
        assert len(log.window_for("m")) == 3       # merged view
        assert log.window_for("m", "missing") == []

    def test_models_do_not_evict_each_other(self):
        log = FeedbackLog(window=2)
        for _ in range(5):
            log.record(obs(model="chatty"))
        log.record(obs(model="quiet"))
        assert len(log.window_for("quiet")) == 1

    def test_lru_group_eviction(self):
        log = FeedbackLog(window=4, max_groups=2)
        log.record(obs(group="a"))
        log.record(obs(group="b"))
        log.record(obs(group="c"))                 # evicts "a"
        assert ("m", "a") not in log.groups()
        assert log.window_for("m", "a") == []
        assert len(log.window_for("m", "b")) == 1

    def test_recording_refreshes_lru_position(self):
        log = FeedbackLog(window=4, max_groups=2)
        log.record(obs(group="a"))
        log.record(obs(group="b"))
        log.record(obs(group="a"))                 # "b" is now LRU
        log.record(obs(group="c"))                 # evicts "b", not "a"
        assert ("m", "a") in log.groups()
        assert ("m", "b") not in log.groups()

    def test_counts_and_totals(self):
        log = FeedbackLog(window=2)
        for _ in range(3):
            log.record(obs())
        log.record(obs(model="other"))
        assert log.counts() == {"m": {NETWORK_GROUP: 2},
                                "other": {NETWORK_GROUP: 1}}
        assert log.models() == ["m", "other"]
        assert len(log) == 3
        assert log.recorded_total == 4             # monotone, unbounded

    def test_mape_is_mean_relative_error(self):
        log = FeedbackLog()
        log.record(obs(predicted=100.0, measured=125.0))   # error 0.2
        log.record(obs(predicted=110.0, measured=100.0))   # error 0.1
        assert log.mape("m") == pytest.approx(0.15)

    def test_mape_without_feedback_raises(self):
        with pytest.raises(ValueError, match="no feedback"):
            FeedbackLog().mape("missing")

    def test_clear_one_model(self):
        log = FeedbackLog()
        log.record(obs(model="a"))
        log.record(obs(model="b"))
        log.clear("a")
        assert log.window_for("a") == []
        assert len(log.window_for("b")) == 1
        log.clear()
        assert len(log) == 0

    @pytest.mark.parametrize("kwargs", [{"window": 0}, {"max_groups": 0}])
    def test_rejects_bad_limits(self, kwargs):
        with pytest.raises(ValueError):
            FeedbackLog(**kwargs)

    def test_concurrent_records_are_not_lost(self):
        log = FeedbackLog(window=4096)
        per_thread = 200

        def hammer(model):
            for _ in range(per_thread):
                log.record(obs(model=model))

        threads = [threading.Thread(target=hammer, args=(f"m{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.recorded_total == 4 * per_thread
        assert all(len(log.window_for(f"m{i}")) == per_thread
                   for i in range(4))
