"""EWMA + Page-Hinkley drift detection."""

from __future__ import annotations

import pytest

from repro.calibration import (
    DriftConfig,
    DriftDetector,
    DriftMonitor,
    FeedbackObservation,
)


def feed(detector, errors):
    state = None
    for error in errors:
        state = detector.update(error)
    return state


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"ewma_alpha": 0.0}, {"ewma_alpha": 1.5},
        {"ewma_threshold": 0.0}, {"ph_lambda": -1.0}, {"warmup": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DriftConfig(**kwargs)


class TestDetector:
    def test_no_alarm_during_warmup(self):
        detector = DriftDetector(DriftConfig(warmup=8))
        state = feed(detector, [5.0] * 7)      # catastrophic but early
        assert not state.drifted
        assert state.triggers == ()

    def test_ewma_backstop_fires_on_bad_level(self):
        config = DriftConfig(ewma_threshold=0.35, warmup=4)
        state = feed(DriftDetector(config), [0.6] * 6)
        assert state.drifted
        assert "ewma" in state.triggers

    def test_page_hinkley_fires_on_mean_shift(self):
        # 7% -> 20%: broken for a KW model, but far below any absolute
        # threshold that tolerates E2E-level error. PH must catch it.
        config = DriftConfig(ewma_threshold=0.35, ph_delta=0.01,
                             ph_lambda=0.5, warmup=8)
        detector = DriftDetector(config)
        state = feed(detector, [0.07] * 10 + [0.20] * 15)
        assert state.drifted
        assert state.triggers == ("page-hinkley",)

    def test_steady_stream_never_alarms(self):
        config = DriftConfig(ph_delta=0.01, ph_lambda=0.5, warmup=8)
        state = feed(DriftDetector(config), [0.07] * 200)
        assert not state.drifted

    def test_ewma_tracks_first_sample_then_smooths(self):
        detector = DriftDetector(DriftConfig(ewma_alpha=0.5))
        assert detector.update(0.4).ewma == pytest.approx(0.4)
        assert detector.update(0.2).ewma == pytest.approx(0.3)

    def test_reset_rearms(self):
        config = DriftConfig(ewma_threshold=0.35, warmup=2)
        detector = DriftDetector(config)
        assert feed(detector, [0.9] * 4).drifted
        detector.reset()
        state = detector.state()
        assert state.n == 0
        assert not state.drifted

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            DriftDetector().update(-0.1)


class TestMonitor:
    @staticmethod
    def obs(model, group, error):
        # measured 1.0, predicted 1 + error -> relative error == error
        return FeedbackObservation(model=model, network="n", batch_size=1,
                                   gpu=None, predicted_us=1.0 + error,
                                   measured_us=1.0, group=group)

    def test_detectors_are_per_key(self):
        monitor = DriftMonitor(DriftConfig(ewma_threshold=0.35, warmup=2))
        for _ in range(4):
            monitor.observe(self.obs("a", "g", 0.9))
            monitor.observe(self.obs("b", "g", 0.01))
        assert monitor.state("a", "g").drifted
        assert not monitor.state("b", "g").drifted
        assert monitor.state("missing", "g") is None

    def test_drifted_maps_model_to_groups(self):
        monitor = DriftMonitor(DriftConfig(ewma_threshold=0.35, warmup=2))
        for _ in range(4):
            monitor.observe(self.obs("a", "g1", 0.9))
            monitor.observe(self.obs("a", "g2", 0.9))
            monitor.observe(self.obs("b", "g1", 0.01))
        assert monitor.drifted() == {"a": ("g1", "g2")}

    def test_reset_one_model(self):
        monitor = DriftMonitor(DriftConfig(ewma_threshold=0.35, warmup=2))
        for _ in range(4):
            monitor.observe(self.obs("a", "g", 0.9))
            monitor.observe(self.obs("b", "g", 0.9))
        monitor.reset("a")
        assert monitor.drifted() == {"b": ("g",)}
        assert monitor.state("a", "g").n == 0
