"""Versioned model store: lineage, atomic promote, byte-exact rollback."""

from __future__ import annotations

import json

import pytest

from repro.calibration import (
    LINEAGE_KEY,
    NETWORK_GROUP,
    STATS_KEY,
    FeedbackObservation,
    ModelStore,
    StoreError,
    lineage_block,
    observe_correction,
    stats_from_document,
    stats_roundtrip_exact,
)
from repro.core.persistence import save_model
from repro.service.registry import ModelRegistry


def obs(predicted, measured):
    return FeedbackObservation(model="m", network="n", batch_size=64,
                               gpu=None, predicted_us=predicted,
                               measured_us=measured, group=NETWORK_GROUP)


@pytest.fixture()
def store(tmp_path, kw_model):
    """A store whose directory holds one pre-store (unversioned) head."""
    save_model(kw_model, tmp_path / "kw-a100.json")
    return ModelStore(tmp_path)


def sample_stats():
    stats = {}
    observe_correction(stats, [obs(100.0, 130.0), obs(50.0, 64.0),
                               obs(200.0, 270.0)])
    return stats


class TestLineageBlock:
    def test_well_formed(self):
        block = lineage_block(3, 2, "drift:network", refit_samples=17)
        assert block == {"version": 3, "parent": 2,
                         "trigger": "drift:network", "refit_samples": 17}

    @pytest.mark.parametrize("version,parent", [
        (0, None), (2, 2), (2, 5), (3, 0),
    ])
    def test_rejects_bad_numbers(self, version, parent):
        with pytest.raises(ValueError):
            lineage_block(version, parent, "t")


class TestAdopt:
    def test_snapshots_head_as_v1(self, store):
        assert store.adopt("kw-a100") == 1
        assert store.versions("kw-a100") == [1]
        lineage = store.document("kw-a100", 1)[LINEAGE_KEY]
        assert lineage["version"] == 1
        assert lineage["parent"] is None
        assert lineage["trigger"] == "adopted"
        assert store.head_version("kw-a100") == 1

    def test_head_becomes_byte_copy_of_v1(self, store):
        store.adopt("kw-a100")
        head = store.head_path("kw-a100").read_bytes()
        assert head == store.version_path("kw-a100", 1).read_bytes()

    def test_idempotent(self, store):
        assert store.adopt("kw-a100") == 1
        assert store.adopt("kw-a100") == 1
        assert store.versions("kw-a100") == [1]

    def test_unknown_name_raises(self, store):
        with pytest.raises(StoreError, match="no head"):
            store.adopt("missing")


class TestPublish:
    def test_stamps_lineage_and_stats(self, store, kw_model):
        stats = sample_stats()
        version = store.publish("kw-a100", kw_model, trigger="drift:network",
                                stats=stats, refit_samples=3)
        assert version == 2                    # pre-store head auto-adopted
        document = store.document("kw-a100", 2)
        assert document[LINEAGE_KEY] == {
            "version": 2, "parent": 1, "trigger": "drift:network",
            "refit_samples": 3}
        revived = stats_from_document(document)
        assert all(revived[g].state_dict() == stats[g].state_dict()
                   for g in stats)
        assert set(revived) == set(stats)

    def test_promotes_by_default(self, store, kw_model):
        store.publish("kw-a100", kw_model, trigger="t")
        assert store.head_version("kw-a100") == 2
        assert store.head_path("kw-a100").read_bytes() == \
            store.version_path("kw-a100", 2).read_bytes()

    def test_promote_false_keeps_live_version(self, store, kw_model):
        version = store.publish("kw-a100", kw_model, trigger="t",
                                promote=False)
        assert version == 2
        # the auto-adopted v1 stays live; v2 is recorded but dormant
        assert store.head_version("kw-a100") == 1
        assert store.head_path("kw-a100").read_bytes() == \
            store.version_path("kw-a100", 1).read_bytes()

    def test_accepts_plain_documents(self, store):
        document = store.document("kw-a100")
        version = store.publish("kw-a100", document, trigger="manual")
        assert store.document("kw-a100", version)["kind"] == "kw"

    def test_parent_chains_across_publishes(self, store, kw_model):
        store.publish("kw-a100", kw_model, trigger="a")
        store.publish("kw-a100", kw_model, trigger="b")
        lineage = store.lineage("kw-a100")
        assert [entry["version"] for entry in lineage] == [1, 2, 3]
        assert [entry["parent"] for entry in lineage] == [None, 1, 2]
        assert [entry["live"] for entry in lineage] == [False, False, True]


class TestPromoteRollback:
    def test_promote_unknown_version_raises(self, store):
        store.adopt("kw-a100")
        with pytest.raises(StoreError, match="no recorded version v9"):
            store.promote("kw-a100", 9)

    def test_rollback_restores_parent_bytes(self, store, kw_model):
        store.adopt("kw-a100")
        v1_bytes = store.version_path("kw-a100", 1).read_bytes()
        store.publish("kw-a100", kw_model, trigger="drift",
                      stats=sample_stats())
        assert store.head_path("kw-a100").read_bytes() != v1_bytes
        assert store.rollback("kw-a100") == 1
        assert store.head_path("kw-a100").read_bytes() == v1_bytes
        # history is untouched: rolling forward again is possible
        store.promote("kw-a100", 2)
        assert store.head_version("kw-a100") == 2

    def test_rollback_without_versions_raises(self, store):
        with pytest.raises(StoreError, match="no versioned head"):
            store.rollback("kw-a100")

    def test_rollback_without_parent_raises(self, store):
        store.adopt("kw-a100")
        with pytest.raises(StoreError, match="no parent"):
            store.rollback("kw-a100")


class TestDescribe:
    def test_summary_shape(self, store, kw_model):
        store.publish("kw-a100", kw_model, trigger="drift")
        summary = store.describe()
        assert summary["kw-a100"]["versions"] == [1, 2]
        assert summary["kw-a100"]["live"] == 2
        assert len(summary["kw-a100"]["lineage"]) == 2


class TestRegistryIntegration:
    """The store shares its directory with the serving registry."""

    def test_version_dirs_are_invisible(self, store, kw_model):
        store.publish("kw-a100", kw_model, trigger="drift")
        registry = ModelRegistry(store.directory)
        assert registry.names() == ["kw-a100"]
        assert not registry.errors

    def test_promote_hot_reloads(self, store, kw_model, roster_index):
        registry = ModelRegistry(store.directory)
        network = next(iter(roster_index.values()))
        before = registry.get("kw-a100").model.predict_network(network, 64)

        from repro.calibration import apply_correction
        from repro.core.linreg import LinearFit
        from repro.core.persistence import model_to_dict
        doubled = apply_correction(model_to_dict(kw_model),
                                   LinearFit(2.0, 0.0, 1.0, 1))
        store.publish("kw-a100", doubled, trigger="drift")

        entry = registry.get("kw-a100")
        assert entry.reloads == 1
        assert entry.model.predict_network(network, 64) == pytest.approx(
            2.0 * before)


class TestStatsRoundtrip:
    def test_exact_through_json(self):
        assert stats_roundtrip_exact(sample_stats())

    def test_head_document_is_valid_json(self, store, kw_model):
        store.publish("kw-a100", kw_model, trigger="t",
                      stats=sample_stats())
        document = json.loads(store.head_path("kw-a100").read_text())
        assert LINEAGE_KEY in document
        assert STATS_KEY in document
