"""Acceptance: the full closed loop recovers accuracy after a substrate shift.

This is the PR's demonstration test — substrate shifts, feedback flows,
drift fires, the refit candidate passes the gate, the promoted version
drops the error, and rollback restores the prior bytes exactly.
"""

from __future__ import annotations

import pytest

from repro.calibration import (
    Calibrator,
    CalibrationLoop,
    DriftConfig,
    FeedbackLog,
    DriftMonitor,
    ModelStore,
    ShadowGate,
)
from repro.calibration.demo import DEMO_DRIFT, run_drift_demo
from repro.core.persistence import model_from_dict, save_model
from repro.service.metrics import MetricsRegistry
from repro.service.registry import ModelRegistry
from repro.service.server import PredictionService, ServiceError

from .conftest import MODEL_NAME


def make_calibrator(tmp_path, kw_model, metrics=None):
    calibrator = Calibrator(ModelStore(tmp_path),
                            feedback=FeedbackLog(window=512),
                            monitor=DriftMonitor(DEMO_DRIFT),
                            gate=ShadowGate(),
                            metrics=metrics)
    save_model(kw_model, calibrator.store.head_path(MODEL_NAME))
    calibrator.store.adopt(MODEL_NAME)
    return calibrator


def feed(calibrator, baseline_obs, shifted_obs, rounds=3):
    for obs in baseline_obs:
        calibrator.record(obs)
    for _ in range(rounds):
        for obs in shifted_obs:
            calibrator.record(obs)


class TestClosedLoop:
    def test_shift_feedback_refit_promote_rollback(self, tmp_path, kw_model,
                                                   baseline_obs, shifted_obs):
        metrics = MetricsRegistry()
        calibrator = make_calibrator(tmp_path, kw_model, metrics)
        feed(calibrator, baseline_obs, shifted_obs)

        # drift fired on the sustained shift
        assert MODEL_NAME in calibrator.monitor.drifted()
        # counted per alarm *transition*, not per drifted sample
        alarms = metrics.counter("drift_alarms_total")
        assert 1 <= alarms < metrics.counter("feedback_total")

        pre_mape = sum(o.error for o in shifted_obs) / len(shifted_obs)
        events = calibrator.step()
        assert len(events) == 1
        event = events[0]
        assert event["promoted"]
        assert event["version"] == 2
        assert event["trigger"].startswith("drift:")
        assert metrics.counter("refit_candidates_total") == 1
        assert metrics.counter("refit_promotions_total") == 1
        assert metrics.counter("refit_rejections_total") == 0

        # the promoted head beats the incumbent on the shifted substrate
        live = model_from_dict(calibrator.store.document(MODEL_NAME))
        post_mape = calibrator.gate.mape(live, list(shifted_obs))
        assert post_mape < pre_mape

        # promotion reset the stream state for the model
        assert calibrator.feedback.window_for(MODEL_NAME) == []
        assert calibrator.monitor.drifted() == {}

        # rollback restores v1 byte-for-byte
        v1_bytes = calibrator.store.version_path(MODEL_NAME, 1).read_bytes()
        assert calibrator.store.rollback(MODEL_NAME) == 1
        assert calibrator.store.head_path(
            MODEL_NAME).read_bytes() == v1_bytes

    def test_step_without_drift_is_a_noop(self, tmp_path, kw_model,
                                          baseline_obs):
        calibrator = make_calibrator(tmp_path, kw_model)
        for obs in baseline_obs:
            calibrator.record(obs)
        assert calibrator.step() == []
        assert calibrator.store.versions(MODEL_NAME) == [1]

    def test_status_payload(self, tmp_path, kw_model, baseline_obs,
                            shifted_obs):
        calibrator = make_calibrator(tmp_path, kw_model)
        feed(calibrator, baseline_obs, shifted_obs)
        calibrator.step()
        status = calibrator.status()
        assert status["feedback"]["recorded_total"] == \
            len(baseline_obs) + 3 * len(shifted_obs)
        assert status["store"][MODEL_NAME]["live"] == 2
        assert status["events"][-1]["promoted"]
        assert set(status) == {"feedback", "drift", "store", "events"}

    def test_refit_error_becomes_event(self, tmp_path, kw_model,
                                       baseline_obs, shifted_obs):
        metrics = MetricsRegistry()
        calibrator = make_calibrator(tmp_path, kw_model, metrics)
        feed(calibrator, baseline_obs, shifted_obs)
        # sabotage the store: the head vanishes between alarm and refit
        calibrator.store.head_path(MODEL_NAME).unlink()
        events = calibrator.step()
        assert len(events) == 1
        assert not events[0]["promoted"]
        assert "error" in events[0]
        assert metrics.counter("refit_errors_total") == 1


class TestServiceIntegration:
    @pytest.fixture()
    def service(self, tmp_path, kw_model):
        calibrator = make_calibrator(tmp_path, kw_model,
                                     MetricsRegistry())
        registry = ModelRegistry(tmp_path)
        return PredictionService(registry, metrics=calibrator.metrics,
                                 calibrator=calibrator)

    def test_feedback_roundtrip(self, service):
        response = service.feedback({
            "model": MODEL_NAME, "network": "resnet18", "batch_size": 64,
            "predicted_us": 100.0, "measured_us": 125.0})
        assert response["recorded"]
        assert response["error"] == pytest.approx(0.2)
        assert response["drift"]["n"] == 1
        assert service.metrics.counter("feedback_total") == 1

    def test_feedback_replays_prediction_when_omitted(self, service):
        response = service.feedback({
            "model": MODEL_NAME, "network": "resnet18", "batch_size": 64,
            "measured_us": 1e5})
        assert response["recorded"]
        assert response["error"] >= 0.0

    def test_feedback_validates_measured(self, service):
        with pytest.raises(ServiceError) as exc:
            service.feedback({"model": MODEL_NAME, "network": "resnet18",
                              "batch_size": 64, "predicted_us": 100.0})
        assert exc.value.status == 400
        assert "measured_us" in exc.value.message

    def test_calibration_status_endpoint(self, service):
        service.feedback({
            "model": MODEL_NAME, "network": "resnet18", "batch_size": 64,
            "predicted_us": 100.0, "measured_us": 125.0})
        status = service.calibration()
        assert status["feedback"]["recorded_total"] == 1
        assert MODEL_NAME in status["store"]

    def test_409_without_calibrator(self, tmp_path, kw_model):
        save_model(kw_model, tmp_path / f"{MODEL_NAME}.json")
        service = PredictionService(ModelRegistry(tmp_path))
        for call in (lambda: service.feedback({}),
                     service.calibration):
            with pytest.raises(ServiceError) as exc:
                call()
            assert exc.value.status == 409
            assert "--calibrate" in exc.value.message

    def test_promotion_reaches_the_serving_path(self, service,
                                                shifted_obs, baseline_obs,
                                                roster_index):
        """After step() promotes, /predict serves the corrected model."""
        network = shifted_obs[0].network
        before = service.predict({"model": MODEL_NAME, "network": network,
                                  "batch_size": 64})["predicted_us"]
        feed(service.calibrator, baseline_obs, shifted_obs)
        events = service.calibrator.step()
        assert events and events[0]["promoted"]
        after = service.predict({"model": MODEL_NAME, "network": network,
                                 "batch_size": 64})["predicted_us"]
        slope = events[0]["correction"]["slope"]
        assert after == pytest.approx(slope * before, rel=1e-9)


class TestLoopThread:
    def test_background_loop_promotes(self, tmp_path, kw_model,
                                      baseline_obs, shifted_obs):
        calibrator = make_calibrator(tmp_path, kw_model)
        feed(calibrator, baseline_obs, shifted_obs)
        loop = CalibrationLoop(calibrator, interval_s=0.05)
        loop.start()
        try:
            deadline = 100
            while (calibrator.store.head_version(MODEL_NAME) != 2
                   and deadline > 0):
                import time
                time.sleep(0.05)
                deadline -= 1
            assert calibrator.store.head_version(MODEL_NAME) == 2
        finally:
            loop.stop()
        assert not loop.running

    def test_rejects_bad_interval(self, tmp_path, kw_model):
        with pytest.raises(ValueError):
            CalibrationLoop(make_calibrator(tmp_path, kw_model),
                            interval_s=0.0)

    def test_double_start_raises(self, tmp_path, kw_model):
        loop = CalibrationLoop(make_calibrator(tmp_path, kw_model),
                               interval_s=60.0)
        loop.start()
        try:
            with pytest.raises(RuntimeError):
                loop.start()
        finally:
            loop.stop()


class TestDemoScenario:
    def test_run_drift_demo(self, tmp_path):
        report = run_drift_demo(tmp_path)
        assert report.ok
        assert report.promoted_version == 2
        assert report.post_mape < report.pre_mape
        assert 1.0 < report.correction_slope < report.shift
        assert report.rollback_exact
        assert "closed loop" in report.render()

    def test_rejects_non_degrading_shift(self, tmp_path):
        with pytest.raises(ValueError, match="shift"):
            run_drift_demo(tmp_path, shift=0.9)
