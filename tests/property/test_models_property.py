"""Property-based tests for model persistence, online fits, and tables."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernelwise import KernelMappingTable
from repro.core.linreg import LinearFit, fit_line
from repro.core.online import OnlineLinearFit
from repro.core.persistence import _fit_from_dict, _fit_to_dict

finite = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=-1e4, max_value=1e4,
                         allow_nan=False, allow_infinity=False)


class TestFitSerialisation:
    @given(finite, finite,
           st.floats(min_value=0, max_value=1, allow_nan=False),
           st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=200)
    def test_round_trip_exact(self, slope, intercept, r2, n):
        fit = LinearFit(slope, intercept, r2, n)
        restored = _fit_from_dict(_fit_to_dict(fit))
        assert restored == fit


class TestOnlineEqualsBatch:
    @given(st.lists(st.tuples(small_floats, small_floats), min_size=2,
                    max_size=60))
    @settings(max_examples=150)
    def test_streaming_matches_batch(self, points):
        from hypothesis import assume
        xs = [p[0] for p in points]
        # exclude numerically degenerate x columns: with a spread below
        # ~1e-5 of the magnitude, both formulations are dominated by
        # floating-point cancellation and neither answer is meaningful
        magnitude = max(1.0, max(abs(x) for x in xs))
        assume(max(xs) - min(xs) > 1e-5 * magnitude
               or max(xs) == min(xs))
        online = OnlineLinearFit()
        for x, y in points:
            online.observe(x, y)
        batch = fit_line([p[0] for p in points], [p[1] for p in points])
        streamed = online.fit()
        # the two formulations (centred vs raw sums) differ only by
        # floating-point cancellation on near-degenerate x columns
        assert math.isclose(streamed.slope, batch.slope,
                            rel_tol=1e-4, abs_tol=1e-6)
        assert math.isclose(streamed.intercept, batch.intercept,
                            rel_tol=1e-4, abs_tol=1e-4)

    @given(st.lists(st.tuples(small_floats, small_floats), min_size=4,
                    max_size=40),
           st.integers(min_value=1, max_value=38))
    @settings(max_examples=100)
    def test_merge_is_order_independent(self, points, split):
        split = min(split, len(points) - 1)
        a, b = OnlineLinearFit(), OnlineLinearFit()
        for x, y in points[:split]:
            a.observe(x, y)
        for x, y in points[split:]:
            b.observe(x, y)
        forward = OnlineLinearFit()
        forward.merge(a)
        forward.merge(b)
        backward = OnlineLinearFit()
        backward.merge(b)
        backward.merge(a)
        assert math.isclose(forward.fit().slope, backward.fit().slope,
                            rel_tol=1e-9, abs_tol=1e-9)


@st.composite
def bucketed_signatures(draw):
    kind = draw(st.sampled_from(["CONV|k3x3|s1x1|std|w1|f0|b0",
                                 "FC|skinny0"]))
    r = draw(st.integers(min_value=0, max_value=20))
    o = draw(st.integers(min_value=0, max_value=30))
    return f"{kind}|r{r}|o{o}"


class TestMappingTableProperties:
    @given(st.dictionaries(bucketed_signatures(),
                           st.tuples(st.sampled_from(["k1", "k2", "k3"])),
                           min_size=1, max_size=25),
           bucketed_signatures())
    @settings(max_examples=150)
    def test_lookup_always_returns_known_sequence_or_none(self, table,
                                                          probe):
        mapping = KernelMappingTable(table, {})
        result = mapping.lookup(probe)
        assert result is None or result in set(table.values())

    @given(st.dictionaries(bucketed_signatures(),
                           st.tuples(st.sampled_from(["k1", "k2"])),
                           min_size=1, max_size=25))
    @settings(max_examples=100)
    def test_exact_entries_always_hit(self, table):
        mapping = KernelMappingTable(table, {})
        for signature, sequence in table.items():
            assert mapping.lookup(signature) == sequence
