"""Property-based tests for shape arithmetic and layer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.tensor import TensorShape, conv2d_output_hw

dims = st.integers(min_value=1, max_value=64)
batches = st.integers(min_value=1, max_value=512)


@st.composite
def image_shapes(draw):
    return TensorShape.image(draw(batches), draw(dims),
                             draw(st.integers(4, 128)),
                             draw(st.integers(4, 128)))


class TestTensorShapeProperties:
    @given(image_shapes())
    def test_numel_is_product(self, shape):
        product = 1
        for d in shape.dims:
            product *= d
        assert shape.numel() == product

    @given(image_shapes(), batches)
    def test_with_batch_rescales_numel(self, shape, new_batch):
        rebatched = shape.with_batch(new_batch)
        assert (rebatched.numel() * shape.batch
                == shape.numel() * new_batch)

    @given(image_shapes())
    def test_bytes_are_four_per_float(self, shape):
        assert shape.bytes() == 4 * shape.numel()

    @given(image_shapes())
    def test_flatten_preserves_numel(self, shape):
        assert shape.flattened().numel() == shape.numel()


class TestConvProperties:
    @given(st.integers(8, 128), st.integers(8, 128),
           st.integers(1, 2), st.sampled_from([1, 3, 5]))
    def test_output_never_larger_than_padded_input(self, h, w, stride,
                                                   kernel):
        pad = kernel // 2
        out_h, out_w = conv2d_output_hw(h, w, (kernel, kernel),
                                        (stride, stride), (pad, pad))
        assert out_h <= h + 2 * pad
        assert out_w <= w + 2 * pad

    @given(image_shapes(), dims, st.sampled_from([1, 3]))
    @settings(max_examples=50)
    def test_conv_flops_scale_with_batch(self, shape, out_channels,
                                         kernel):
        conv = Conv2d(shape.channels, out_channels, kernel,
                      padding=kernel // 2, bias=False)
        out1 = conv.infer_shape([shape.with_batch(1)])
        out2 = conv.infer_shape([shape.with_batch(2)])
        f1 = conv.flops([shape.with_batch(1)], out1)
        f2 = conv.flops([shape.with_batch(2)], out2)
        assert f2 == 2 * f1

    @given(image_shapes())
    @settings(max_examples=50)
    def test_shape_preserving_layers(self, shape):
        for layer in (BatchNorm2d(shape.channels), ReLU()):
            assert layer.infer_shape([shape]) == shape

    @given(image_shapes())
    @settings(max_examples=50)
    def test_add_is_idempotent_on_shape(self, shape):
        assert Add().infer_shape([shape, shape]) == shape


class TestPoolProperties:
    @given(image_shapes(), st.sampled_from([2, 3]), st.sampled_from([1, 2]))
    @settings(max_examples=50)
    def test_pooling_never_upsamples(self, shape, kernel, stride):
        if shape.height < kernel or shape.width < kernel:
            return
        for pool_type in (MaxPool2d, AvgPool2d):
            pool = pool_type(kernel, stride=stride)
            out = pool.infer_shape([shape])
            assert out.height <= shape.height
            assert out.width <= shape.width
            assert out.channels == shape.channels


class TestLinearProperties:
    @given(batches, st.integers(1, 512), st.integers(1, 512))
    @settings(max_examples=50)
    def test_fc_flops_formula(self, batch, in_features, out_features):
        fc = Linear(in_features, out_features, bias=False)
        shape = TensorShape.flat(batch, in_features)
        out = fc.infer_shape([shape])
        assert fc.flops([shape], out) == batch * in_features * out_features
        assert fc.param_count() == in_features * out_features
