"""Property-based tests on the GPU substrate's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import SimulatedGPU, gpu, gpu_names
from repro.gpu.kernels import Driver, Kernel, KernelCall, KernelRole
from repro.gpu.timing import GroundTruthTiming
from repro.nn.graph import Network
from repro.nn.layers import BatchNorm2d, Conv2d, ReLU
from repro.nn.tensor import TensorShape

COPY = Kernel("prop_copy", KernelRole.MAIN, Driver.INPUT, "copy")


class TestTimingProperties:
    @given(st.floats(min_value=1e3, max_value=1e11),
           st.sampled_from(sorted(gpu_names())))
    @settings(max_examples=100)
    def test_work_time_positive_and_finite(self, bytes_moved, name):
        timing = GroundTruthTiming(gpu(name))
        call = KernelCall(COPY, 0.0, bytes_moved, bytes_moved)
        work = timing.kernel_work_us(call)
        assert 0 < work < 1e9

    @given(st.floats(min_value=1e6, max_value=1e10),
           st.floats(min_value=1.2, max_value=8.0))
    @settings(max_examples=100)
    def test_monotone_in_bytes(self, bytes_moved, factor):
        timing = GroundTruthTiming(gpu("A100"))
        small = KernelCall(COPY, 0.0, bytes_moved, bytes_moved)
        large = KernelCall(COPY, 0.0, bytes_moved * factor,
                           bytes_moved * factor)
        # allow a small tolerance: the systematic wiggle is bounded by
        # (1+size_wiggle)(1+class_wiggle) between adjacent sizes
        assert (timing.kernel_work_us(large)
                > 0.6 * timing.kernel_work_us(small))

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=50)
    def test_noise_has_unit_scale(self, batch_index):
        timing = GroundTruthTiming(gpu("V100"))
        call = KernelCall(COPY, 0.0, 1e8, 1e8)
        noise = timing.measurement_noise(call, batch_index)
        assert 0.6 < noise < 1.6


@st.composite
def conv_networks(draw):
    """Random small conv stacks with valid channel plumbing."""
    channels = draw(st.integers(min_value=4, max_value=32))
    depth = draw(st.integers(min_value=1, max_value=4))
    net = Network("prop_net", TensorShape.image(1, 3, 32, 32))
    previous = 3
    for i in range(depth):
        net.add(f"conv{i}", Conv2d(previous, channels, 3, padding=1,
                                   bias=False))
        net.add(f"bn{i}", BatchNorm2d(channels))
        net.add(f"relu{i}", ReLU())
        previous = channels
    return net


class TestDeviceProperties:
    @given(conv_networks(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_any_network_executes(self, net, batch):
        result = SimulatedGPU(gpu("A100")).run_network(net, batch)
        assert result.e2e_us > 0
        assert len(result.layers) == len(net)
        for layer in result.layers:
            for kernel in layer.kernels:
                assert kernel.duration_us > 0

    @given(conv_networks())
    @settings(max_examples=20, deadline=None)
    def test_batch_monotonicity(self, net):
        device = SimulatedGPU(gpu("A100"))
        t_small = device.run_network(net, 4).e2e_us
        t_large = device.run_network(net, 64).e2e_us
        assert t_large > t_small
