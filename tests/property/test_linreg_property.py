"""Property-based tests for the regression and metrics substrate."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.linreg import fit_line
from repro.core.metrics import relative_error, s_curve

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-3, max_value=1e6,
                     allow_nan=False, allow_infinity=False)


class TestFitLineProperties:
    @given(st.floats(-100, 100), st.floats(-100, 100),
           st.lists(st.floats(-1e3, 1e3), min_size=3, max_size=30,
                    unique=True))
    @settings(max_examples=100)
    def test_recovers_exact_lines(self, slope, intercept, xs):
        ys = [slope * x + intercept for x in xs]
        fit = fit_line(xs, ys)
        for x in xs:
            assert math.isclose(fit.predict(x), slope * x + intercept,
                                rel_tol=1e-6, abs_tol=1e-4)

    @given(st.lists(st.tuples(finite, finite), min_size=2, max_size=30))
    @settings(max_examples=100)
    def test_r2_at_most_one(self, points):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        fit = fit_line(xs, ys)
        assert fit.r2 <= 1.0 + 1e-9

    @given(st.lists(st.tuples(finite, finite), min_size=3, max_size=30))
    @settings(max_examples=100)
    def test_ols_residual_never_beaten_by_mean(self, points):
        """The fitted line's SSE never exceeds the constant-mean SSE."""
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        fit = fit_line(xs, ys)
        mean = sum(ys) / len(ys)
        sse_fit = sum((y - fit.predict(x)) ** 2 for x, y in points)
        sse_mean = sum((y - mean) ** 2 for y in ys)
        assert sse_fit <= sse_mean * (1 + 1e-9) + 1e-9

    @given(st.lists(st.tuples(positive, positive), min_size=2, max_size=30),
           st.floats(0.5, 2.0))
    @settings(max_examples=50)
    def test_scale_equivariance(self, points, scale):
        """Scaling y scales slope and intercept identically."""
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assume(max(xs) - min(xs) > 1e-6)
        base = fit_line(xs, ys)
        scaled = fit_line(xs, [y * scale for y in ys])
        assert math.isclose(scaled.slope, base.slope * scale,
                            rel_tol=1e-6, abs_tol=1e-6)
        assert math.isclose(scaled.intercept, base.intercept * scale,
                            rel_tol=1e-6, abs_tol=1e-6)


class TestMetricProperties:
    @given(positive, positive)
    def test_relative_error_nonnegative(self, predicted, measured):
        assert relative_error(predicted, measured) >= 0.0

    @given(positive)
    def test_perfect_prediction_zero_error(self, value):
        assert relative_error(value, value) == 0.0

    @given(st.dictionaries(st.text(min_size=1, max_size=6), positive,
                           min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_s_curve_sorted_and_complete(self, predictions):
        measurements = {name: 1.0 for name in predictions}
        curve = s_curve(predictions, measurements)
        assert list(curve.ratios) == sorted(curve.ratios)
        assert len(curve.ratios) == len(predictions)

    @given(st.dictionaries(st.text(min_size=1, max_size=6), positive,
                           min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_s_curve_percentiles_monotone(self, predictions):
        measurements = {name: 2.0 for name in predictions}
        curve = s_curve(predictions, measurements)
        values = [curve.at_percentile(p) for p in (0, 25, 50, 75, 100)]
        assert values == sorted(values)
