"""Property-based tests on dispatch signatures and lowering consistency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import layer_signature, signature_kind
from repro.gpu.cudnn import kernel_calls
from repro.nn.graph import Network
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, MaxPool2d, ReLU
from repro.nn.tensor import TensorShape


@st.composite
def conv_probes(draw):
    """Random valid (conv layer, input shape, batch) configurations."""
    in_channels = draw(st.sampled_from([3, 16, 32, 64, 128]))
    out_channels = draw(st.sampled_from([8, 16, 64, 128]))
    kernel = draw(st.sampled_from([1, 3, 5, 7]))
    stride = draw(st.sampled_from([1, 2]))
    hw = draw(st.sampled_from([14, 28, 56]))
    batch = draw(st.sampled_from([1, 8, 64]))
    groups = 1
    if draw(st.booleans()) and in_channels == out_channels:
        groups = in_channels   # depthwise
    layer = Conv2d(in_channels, out_channels, kernel, stride=stride,
                   padding=kernel // 2, groups=groups, bias=False)
    shape = TensorShape.image(batch, in_channels, hw, hw)
    return layer, shape


def info_of(layer, shape):
    net = Network("probe", shape)
    net.add("x", layer)
    return net.layer_infos(shape.batch)[0]


class TestSignatureProperties:
    @given(conv_probes())
    @settings(max_examples=150)
    def test_signature_is_deterministic(self, probe):
        layer, shape = probe
        a = layer_signature(info_of(layer, shape))
        b = layer_signature(info_of(layer, shape))
        assert a == b

    @given(conv_probes())
    @settings(max_examples=150)
    def test_signature_kind_round_trips(self, probe):
        layer, shape = probe
        signature = layer_signature(info_of(layer, shape))
        assert signature_kind(signature) == "CONV"
        training = layer_signature(info_of(layer, shape), training=True)
        assert training == "T|" + signature
        assert signature_kind(training) == "CONV"

    @given(conv_probes())
    @settings(max_examples=150)
    def test_same_signature_implies_same_kernel_sequence(self, probe):
        """The signature must determine dispatch: identical signatures
        always produce identical kernel name sequences (the property the
        kernel mapping table's learnability rests on)."""
        layer, shape = probe
        info = info_of(layer, shape)
        names_a = [c.kernel.name for c in kernel_calls(info)]
        names_b = [c.kernel.name for c in kernel_calls(info_of(layer,
                                                               shape))]
        assert names_a == names_b

    @given(conv_probes(), conv_probes())
    @settings(max_examples=150)
    def test_different_sequences_imply_different_signatures(self, a, b):
        """Contrapositive over random pairs: if two layers lower to
        different kernel sequences, their signatures must differ."""
        info_a = info_of(*a)
        info_b = info_of(*b)
        seq_a = tuple(c.kernel.name for c in kernel_calls(info_a))
        seq_b = tuple(c.kernel.name for c in kernel_calls(info_b))
        if seq_a != seq_b:
            assert layer_signature(info_a) != layer_signature(info_b)


class TestNonConvSignatures:
    @given(st.sampled_from([BatchNorm2d(32), ReLU(),
                            MaxPool2d(2, stride=2)]),
           st.sampled_from([1, 4, 32]))
    @settings(max_examples=60)
    def test_elementwise_signatures_batch_independent(self, layer, batch):
        shape = TensorShape.image(batch, 32, 16, 16)
        signature = layer_signature(info_of(layer, shape))
        reference = layer_signature(
            info_of(layer, TensorShape.image(1, 32, 16, 16)))
        assert signature == reference

    @given(st.sampled_from([64, 512, 2048]), st.sampled_from([10, 1000]))
    @settings(max_examples=40)
    def test_fc_signature_tracks_dispatch(self, in_features, out_features):
        layer = Linear(in_features, out_features)
        shape = TensorShape.flat(64, in_features)
        info = info_of(layer, shape)
        signature = layer_signature(info)
        (call,) = kernel_calls(info)
        skinny = "skinny1" in signature
        assert skinny == (call.kernel.name == "gemv_sgemm_t")
