"""Property-based tests for the event engine, links, and disaggregation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.disaggregated import DisaggregatedSystem, LayerTask
from repro.sim.engine import EventEngine
from repro.sim.links import Link

delays = st.lists(st.floats(min_value=0.0, max_value=1e4,
                            allow_nan=False), min_size=1, max_size=40)


class TestEngineProperties:
    @given(delays)
    @settings(max_examples=100)
    def test_events_fire_in_nondecreasing_time(self, offsets):
        engine = EventEngine()
        fired = []
        for offset in offsets:
            engine.schedule(offset, lambda e: fired.append(e.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(offsets)

    @given(delays)
    @settings(max_examples=100)
    def test_final_time_is_max_offset(self, offsets):
        engine = EventEngine()
        for offset in offsets:
            engine.schedule(offset, lambda e: None)
        assert engine.run() == max(offsets)


class TestFifoTieBreak:
    @given(st.lists(st.sampled_from([0.0, 1.0, 2.0, 5.0]),
                    min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_equal_time_events_fire_in_insertion_order(self, offsets):
        engine = EventEngine()
        fired = []
        for index, offset in enumerate(offsets):
            engine.schedule(offset, lambda e, i=index: fired.append(i))
        engine.run()
        expected = [i for _, i in
                    sorted(zip(offsets, range(len(offsets))),
                           key=lambda pair: (pair[0], pair[1]))]
        assert fired == expected

    @given(st.lists(st.sampled_from([0.0, 1.0, 2.0]),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_two_identical_engines_agree(self, offsets):
        orders = []
        for _ in range(2):
            engine = EventEngine()
            fired = []
            for index, offset in enumerate(offsets):
                engine.schedule(offset, lambda e, i=index: fired.append(i))
            engine.run()
            orders.append(fired)
        assert orders[0] == orders[1]


class TestLinkProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1,
                    max_size=20),
           st.floats(min_value=1, max_value=1000))
    @settings(max_examples=100)
    def test_fifo_finish_times_monotone(self, sizes, bandwidth):
        link = Link(bandwidth_gbs=bandwidth, latency_us=1.0)
        finishes = [link.transfer(size, 0.0) for size in sizes]
        assert finishes == sorted(finishes)

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1,
                    max_size=20))
    @settings(max_examples=100)
    def test_total_occupancy_conserved(self, sizes):
        link = Link(bandwidth_gbs=10.0, latency_us=2.0)
        last = 0.0
        for size in sizes:
            last = link.transfer(size, 0.0)
        expected = sum(link.transfer_time_us(size) for size in sizes)
        assert last == sum([expected])  # noqa: C409 - clarity
        assert link.bytes_moved == sum(sizes)


@st.composite
def task_lists(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    return [
        LayerTask(f"l{i}",
                  draw(st.floats(min_value=0, max_value=1e3)),
                  draw(st.floats(min_value=0, max_value=1e7)))
        for i in range(n)
    ]


class TestDisaggregationProperties:
    @given(task_lists(), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_makespan_at_least_compute_and_never_deadlocks(self, tasks,
                                                           window):
        system = DisaggregatedSystem(Link(8.0, 1.0), window)
        result = system.run(tasks)
        compute = sum(t.compute_us for t in tasks)
        assert result.makespan_us >= compute - 1e-6
        assert result.stall_us >= -1e-6

    @given(task_lists())
    @settings(max_examples=60, deadline=None)
    def test_more_bandwidth_never_hurts(self, tasks):
        slow = DisaggregatedSystem(Link(1.0, 1.0), 4).run(tasks)
        fast = DisaggregatedSystem(Link(100.0, 1.0), 4).run(tasks)
        assert fast.makespan_us <= slow.makespan_us + 1e-6

    @given(task_lists(), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_all_bytes_transferred(self, tasks, window):
        system = DisaggregatedSystem(Link(8.0, 1.0), window)
        result = system.run(tasks)
        assert result.bytes_moved == sum(t.fetch_bytes for t in tasks)
