"""Shared fixtures: small rosters and datasets reused across test modules."""

from __future__ import annotations

import pytest

from repro import core, dataset, zoo
from repro.gpu import SimulatedGPU, gpu


@pytest.fixture(scope="session")
def small_roster():
    """Eight representative CNNs (fast to profile)."""
    return zoo.imagenet_roster("small")


@pytest.fixture(scope="session")
def roster_index(small_roster):
    return core.networks_by_name(small_roster)


@pytest.fixture(scope="session")
def a100():
    return SimulatedGPU(gpu("A100"))


@pytest.fixture(scope="session")
def titan():
    return SimulatedGPU(gpu("TITAN RTX"))


@pytest.fixture(scope="session")
def small_dataset(small_roster):
    """Small-campaign dataset: 8 nets x 2 GPUs x 2 batch sizes."""
    return dataset.build_dataset(
        small_roster, [gpu("A100"), gpu("TITAN RTX")], batch_sizes=[64, 512])


@pytest.fixture(scope="session")
def a100_dataset(small_dataset):
    return small_dataset.for_gpu("A100")


@pytest.fixture(scope="session")
def small_split(small_dataset):
    """Deterministic split whose held-out networks have kernel coverage.

    With only eight networks, a random holdout can isolate the sole user
    of a kernel family (e.g. ShuffleNet's grouped convolutions), turning
    the fixture into a worst-case coverage test. The full-roster
    benchmarks exercise random splits; here we hold out two networks
    whose kernels all appear in the remaining six.
    """
    test_names = {"resnet50", "densenet121"}
    train_names = set(small_dataset.network_names()) - test_names
    return (small_dataset.filter(networks=train_names),
            small_dataset.filter(networks=test_names))
