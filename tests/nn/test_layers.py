"""Unit tests for layer shape inference, parameters, and FLOPs."""

import pytest

from repro.nn.layer import LAYER_REGISTRY, Layer, layer_kinds, register_layer
from repro.nn.layers import (
    Add,
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    ChannelShuffle,
    Concat,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    MaxPool2d,
    Multiply,
    ReLU,
    Softmax,
    depthwise_conv2d,
    pointwise_conv2d,
)
from repro.nn.tensor import TensorShape

IMG = TensorShape.image(2, 64, 56, 56)


def out_of(layer, *inputs):
    return layer.infer_shape(list(inputs))


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(64, 128, 3, stride=2, padding=1)
        assert out_of(conv, IMG).dims == (2, 128, 28, 28)

    def test_param_count_with_bias(self):
        conv = Conv2d(64, 128, 3, bias=True)
        assert conv.param_count() == 128 * 64 * 9 + 128

    def test_param_count_without_bias(self):
        conv = Conv2d(64, 128, 3, bias=False)
        assert conv.param_count() == 128 * 64 * 9

    def test_flops_formula(self):
        # paper: FLOPs = Cout * H' * W' * Cin * Kh * Kw (x batch)
        conv = Conv2d(64, 128, 3, padding=1, bias=False)
        out = out_of(conv, IMG)
        assert conv.flops([IMG], out) == 2 * 128 * 56 * 56 * 64 * 9

    def test_grouped_params_and_flops_divide(self):
        full = Conv2d(64, 128, 3, padding=1, bias=False)
        grouped = Conv2d(64, 128, 3, padding=1, groups=4, bias=False)
        out = out_of(full, IMG)
        assert grouped.param_count() * 4 == full.param_count()
        assert grouped.flops([IMG], out) * 4 == full.flops([IMG], out)

    def test_depthwise_helper(self):
        conv = depthwise_conv2d(64, 3, padding=1)
        assert conv.is_depthwise
        assert conv.groups == 64
        assert out_of(conv, IMG).channels == 64

    def test_pointwise_helper(self):
        conv = pointwise_conv2d(64, 256)
        assert conv.is_pointwise
        assert out_of(conv, IMG).dims == (2, 256, 56, 56)

    def test_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            out_of(Conv2d(32, 64, 3), IMG)

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            out_of(Conv2d(64, 64, 3), TensorShape.flat(2, 64))

    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            Conv2d(64, 128, 3, groups=5)


class TestLinear:
    def test_flat_shape(self):
        fc = Linear(512, 1000)
        assert out_of(fc, TensorShape.flat(8, 512)).dims == (8, 1000)

    def test_sequence_shape(self):
        fc = Linear(768, 3072)
        out = out_of(fc, TensorShape.sequence(2, 128, 768))
        assert out.dims == (2, 128, 3072)

    def test_params(self):
        assert Linear(512, 1000).param_count() == 512 * 1000 + 1000

    def test_flops_per_token(self):
        fc = Linear(768, 768)
        seq = TensorShape.sequence(2, 128, 768)
        assert fc.flops([seq], out_of(fc, seq)) == 2 * 128 * 768 * 768

    def test_rejects_mismatched_features(self):
        with pytest.raises(ValueError):
            out_of(Linear(512, 10), TensorShape.flat(1, 100))


class TestNorms:
    def test_bn_preserves_shape(self):
        assert out_of(BatchNorm2d(64), IMG) == IMG

    def test_bn_params(self):
        assert BatchNorm2d(64).param_count() == 128

    def test_bn_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            out_of(BatchNorm2d(32), IMG)

    def test_ln_preserves_shape(self):
        seq = TensorShape.sequence(2, 16, 768)
        assert out_of(LayerNorm(768), seq) == seq

    def test_ln_rejects_mismatch(self):
        with pytest.raises(ValueError):
            out_of(LayerNorm(512), TensorShape.sequence(1, 4, 768))


class TestPooling:
    def test_maxpool_shape(self):
        pool = MaxPool2d(3, stride=2, padding=1)
        assert out_of(pool, IMG).dims == (2, 64, 28, 28)

    def test_avgpool_default_stride_is_kernel(self):
        pool = AvgPool2d(2)
        assert out_of(pool, IMG).dims == (2, 64, 28, 28)

    def test_pool_has_no_params(self):
        assert MaxPool2d(2).param_count() == 0

    def test_adaptive_pool_to_one(self):
        assert out_of(AdaptiveAvgPool2d(1), IMG).dims == (2, 64, 1, 1)

    def test_adaptive_pool_rejects_upsampling(self):
        with pytest.raises(ValueError):
            out_of(AdaptiveAvgPool2d(100), IMG)


class TestElementwise:
    def test_add_shape(self):
        assert out_of(Add(), IMG, IMG) == IMG

    def test_add_rejects_mismatch(self):
        with pytest.raises(ValueError):
            out_of(Add(), IMG, TensorShape.image(2, 32, 56, 56))

    def test_add_flops_scale_with_inputs(self):
        three = Add().flops([IMG, IMG, IMG], IMG)
        two = Add().flops([IMG, IMG], IMG)
        assert three == 2 * two

    def test_multiply_broadcast(self):
        gate = TensorShape.image(2, 64, 1, 1)
        assert out_of(Multiply(), IMG, gate) == IMG

    def test_multiply_rejects_bad_broadcast(self):
        bad = TensorShape.image(2, 32, 1, 1)
        with pytest.raises(ValueError):
            out_of(Multiply(), IMG, bad)

    def test_concat_channels(self):
        other = TensorShape.image(2, 32, 56, 56)
        assert out_of(Concat(), IMG, other).channels == 96

    def test_concat_rejects_spatial_mismatch(self):
        other = TensorShape.image(2, 64, 28, 28)
        with pytest.raises(ValueError):
            out_of(Concat(), IMG, other)


class TestReshapeLayers:
    def test_flatten(self):
        assert out_of(Flatten(), IMG).dims == (2, 64 * 56 * 56)

    def test_flatten_is_free(self):
        assert Flatten().flops([IMG], out_of(Flatten(), IMG)) == 0

    def test_channel_shuffle_preserves_shape(self):
        assert out_of(ChannelShuffle(4), IMG) == IMG

    def test_channel_shuffle_rejects_indivisible(self):
        with pytest.raises(ValueError):
            out_of(ChannelShuffle(5), IMG)

    def test_dropout_is_identity_and_free(self):
        drop = Dropout(0.5)
        assert out_of(drop, IMG) == IMG
        assert drop.flops([IMG], IMG) == 0

    def test_dropout_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestEmbeddingAndSoftmax:
    def test_embedding_shape(self):
        ids = TensorShape((2, 128), dtype="int64")
        out = out_of(Embedding(30000, 768), ids)
        assert out.dims == (2, 128, 768)

    def test_embedding_params(self):
        assert Embedding(100, 8).param_count() == 800

    def test_embedding_rejects_rank3(self):
        with pytest.raises(ValueError):
            out_of(Embedding(10, 4), TensorShape.sequence(1, 2, 3))

    def test_softmax_preserves_shape(self):
        assert out_of(Softmax(), IMG) == IMG

    def test_relu_is_free_of_params(self):
        assert ReLU().param_count() == 0


class TestRegistry:
    def test_common_kinds_registered(self):
        for kind in ("CONV", "FC", "BN", "ReLU", "MaxPool", "Add", "Concat"):
            assert kind in LAYER_REGISTRY

    def test_layer_kinds_sorted(self):
        kinds = layer_kinds()
        assert kinds == sorted(kinds)

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError):
            @register_layer
            class FakeConv(Layer):  # noqa: F811 - intentional duplicate
                kind = "CONV"

                def infer_shape(self, inputs):
                    return inputs[0]

                def param_count(self):
                    return 0

                def flops(self, inputs, output):
                    return 0

    def test_arity_check(self):
        with pytest.raises(ValueError):
            out_of(BatchNorm2d(64), IMG, IMG)
