"""Unit tests for attention layers (coarse and decomposed)."""

import pytest

from repro.nn.layers.attention import (
    AttentionContext,
    AttentionScores,
    MultiHeadAttention,
)
from repro.nn.tensor import TensorShape

SEQ = TensorShape.sequence(2, 128, 768)


class TestMultiHeadAttention:
    def test_shape_preserved(self):
        mha = MultiHeadAttention(768, 12)
        assert mha.infer_shape([SEQ]) == SEQ

    def test_head_dim(self):
        assert MultiHeadAttention(768, 12).head_dim == 64

    def test_params_four_projections(self):
        mha = MultiHeadAttention(768, 12)
        assert mha.param_count() == 4 * (768 * 768 + 768)

    def test_flops_components(self):
        mha = MultiHeadAttention(768, 12)
        flops = mha.flops([SEQ], SEQ)
        projections = 4 * 2 * 128 * 768 * 768
        attention = 2 * 2 * 12 * 128 * 128 * 64
        assert flops == projections + attention

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(768, 7)

    def test_rejects_wrong_embed_dim(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(512, 8).infer_shape([SEQ])


class TestDecomposedAttention:
    def test_scores_shape(self):
        qkv = TensorShape.sequence(2, 128, 3 * 768)
        scores = AttentionScores(768, 12).infer_shape([qkv])
        assert scores.dims == (2, 12 * 128, 128)

    def test_scores_flops(self):
        qkv = TensorShape.sequence(2, 128, 3 * 768)
        layer = AttentionScores(768, 12)
        out = layer.infer_shape([qkv])
        assert layer.flops([qkv], out) == 2 * 12 * 128 * 128 * 64

    def test_scores_rejects_unfused_input(self):
        with pytest.raises(ValueError):
            AttentionScores(768, 12).infer_shape([SEQ])

    def test_context_shape(self):
        qkv = TensorShape.sequence(2, 128, 3 * 768)
        scores = AttentionScores(768, 12).infer_shape([qkv])
        context = AttentionContext(768, 12).infer_shape([scores, qkv])
        assert context.dims == (2, 128, 768)

    def test_context_rejects_bad_scores(self):
        qkv = TensorShape.sequence(2, 128, 3 * 768)
        bad_scores = TensorShape.sequence(2, 128, 128)
        with pytest.raises(ValueError):
            AttentionContext(768, 12).infer_shape([bad_scores, qkv])

    def test_decomposition_flops_match_coarse_layer(self):
        """Scores + context flops equal the coarse MHA attention part."""
        qkv = TensorShape.sequence(2, 128, 3 * 768)
        scores_layer = AttentionScores(768, 12)
        context_layer = AttentionContext(768, 12)
        scores = scores_layer.infer_shape([qkv])
        context = context_layer.infer_shape([scores, qkv])
        decomposed = (scores_layer.flops([qkv], scores)
                      + context_layer.flops([scores, qkv], context))
        mha = MultiHeadAttention(768, 12)
        projections = 4 * 2 * 128 * 768 * 768
        assert decomposed == mha.flops([SEQ], SEQ) - projections
