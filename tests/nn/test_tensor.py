"""Unit tests for tensor shape arithmetic."""

import pytest

from repro.nn.tensor import (
    TensorShape,
    conv2d_output_hw,
    pair,
    pool2d_output_hw,
)


class TestTensorShape:
    def test_image_constructor(self):
        shape = TensorShape.image(4, 3, 224, 224)
        assert shape.dims == (4, 3, 224, 224)
        assert shape.batch == 4
        assert shape.channels == 3
        assert shape.height == 224
        assert shape.width == 224

    def test_sequence_constructor(self):
        shape = TensorShape.sequence(2, 128, 768)
        assert shape.dims == (2, 128, 768)
        assert shape.rank == 3

    def test_flat_constructor(self):
        shape = TensorShape.flat(8, 1000)
        assert shape.dims == (8, 1000)
        assert shape.numel_per_sample() == 1000

    def test_numel(self):
        assert TensorShape.image(2, 3, 4, 5).numel() == 120

    def test_numel_per_sample_excludes_batch(self):
        assert TensorShape.image(7, 3, 4, 5).numel_per_sample() == 60

    def test_bytes_float32(self):
        assert TensorShape.flat(1, 10).bytes() == 40

    def test_bytes_int64(self):
        assert TensorShape((1, 10), dtype="int64").bytes() == 80

    def test_nchw_equals_numel(self):
        shape = TensorShape.image(4, 64, 56, 56)
        assert shape.nchw() == shape.numel()

    def test_with_batch(self):
        shape = TensorShape.image(1, 3, 224, 224).with_batch(512)
        assert shape.batch == 512
        assert shape.dims[1:] == (3, 224, 224)

    def test_with_channels(self):
        assert TensorShape.image(1, 3, 8, 8).with_channels(64).channels == 64

    def test_with_channels_rank1_rejected(self):
        with pytest.raises(ValueError):
            TensorShape((4,)).with_channels(2)

    def test_flattened(self):
        assert TensorShape.image(2, 3, 4, 5).flattened().dims == (2, 60)

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValueError):
            TensorShape((1, 0, 5))

    def test_rejects_negative_dimension(self):
        with pytest.raises(ValueError):
            TensorShape((1, -2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TensorShape(())

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            TensorShape((1, 2), dtype="float8")

    def test_str(self):
        assert str(TensorShape.image(1, 3, 8, 8)) == "1x3x8x8"

    def test_height_width_degrade_for_low_rank(self):
        flat = TensorShape.flat(2, 100)
        assert flat.height == 1
        assert flat.width == 1

    def test_immutable(self):
        shape = TensorShape.flat(1, 2)
        with pytest.raises(Exception):
            shape.dims = (3, 4)


class TestConvArithmetic:
    def test_same_padding_3x3(self):
        assert conv2d_output_hw(56, 56, (3, 3), (1, 1), (1, 1)) == (56, 56)

    def test_stride_2_halves(self):
        assert conv2d_output_hw(224, 224, (7, 7), (2, 2), (3, 3)) == (112, 112)

    def test_1x1(self):
        assert conv2d_output_hw(14, 14, (1, 1), (1, 1), (0, 0)) == (14, 14)

    def test_dilation(self):
        # dilated 3x3 behaves like 5x5
        assert (conv2d_output_hw(32, 32, (3, 3), (1, 1), (0, 0), (2, 2))
                == conv2d_output_hw(32, 32, (5, 5), (1, 1), (0, 0)))

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError):
            conv2d_output_hw(2, 2, (5, 5), (1, 1), (0, 0))


class TestPoolArithmetic:
    def test_floor_mode(self):
        assert pool2d_output_hw(112, 112, (3, 3), (2, 2), (1, 1)) == (56, 56)

    def test_ceil_mode(self):
        # 55 -> ceil((55 - 3)/2) + 1 = 27; floor gives 27 too; use odd case
        assert pool2d_output_hw(7, 7, (2, 2), (2, 2), (0, 0),
                                ceil_mode=True) == (4, 4)
        assert pool2d_output_hw(7, 7, (2, 2), (2, 2), (0, 0),
                                ceil_mode=False) == (3, 3)

    def test_ceil_mode_window_clamp(self):
        # the last window must start inside the (padded) input
        out = pool2d_output_hw(4, 4, (2, 2), (2, 2), (1, 1), ceil_mode=True)
        assert out == (3, 3)

    def test_empty_output_rejected(self):
        with pytest.raises(ValueError):
            pool2d_output_hw(1, 1, (3, 3), (2, 2), (0, 0))


class TestPair:
    def test_int_duplicates(self):
        assert pair(3) == (3, 3)

    def test_tuple_passthrough(self):
        assert pair((1, 2)) == (1, 2)

    def test_bad_tuple_rejected(self):
        with pytest.raises(ValueError):
            pair((1, 2, 3))
