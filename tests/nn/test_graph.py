"""Unit tests for the network DAG."""

import pytest

from repro.nn.graph import INPUT, Network, sequential
from repro.nn.layers import Add, Conv2d, Flatten, Linear, ReLU
from repro.nn.tensor import TensorShape

IMAGENET = TensorShape.image(1, 3, 224, 224)


def tiny_net() -> Network:
    net = Network("tiny", IMAGENET, family="test")
    net.add("conv", Conv2d(3, 8, 3, padding=1, bias=False))
    net.add("relu", ReLU())
    net.add("flatten", Flatten())
    net.add("fc", Linear(8 * 224 * 224, 10))
    return net


class TestConstruction:
    def test_default_input_chains(self):
        net = tiny_net()
        assert net.node("relu").inputs == ("conv",)
        assert net.node("conv").inputs == (INPUT,)

    def test_explicit_multi_input(self):
        net = Network("branch", IMAGENET)
        net.add("a", Conv2d(3, 8, 3, padding=1))
        net.add("b", Conv2d(8, 8, 3, padding=1), inputs=("a",))
        net.add("join", Add(), inputs=("a", "b"))
        assert net.output_shape(2).channels == 8

    def test_rejects_duplicate_names(self):
        net = Network("dup", IMAGENET)
        net.add("x", ReLU())
        with pytest.raises(ValueError):
            net.add("x", ReLU())

    def test_rejects_forward_reference(self):
        net = Network("fwd", IMAGENET)
        with pytest.raises(ValueError):
            net.add("a", Add(), inputs=("later",))

    def test_rejects_reserved_name(self):
        net = Network("r", IMAGENET)
        with pytest.raises(ValueError):
            net.add(INPUT, ReLU())

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Network("", IMAGENET)

    def test_input_batch_is_canonicalised_to_one(self):
        net = Network("b", TensorShape.image(512, 3, 8, 8))
        assert net.input_shape.batch == 1

    def test_sequential_helper(self):
        net = sequential("seq", IMAGENET,
                         [("c", Conv2d(3, 4, 1)), ("r", ReLU())])
        assert len(net) == 2
        assert net.output_name == "r"


class TestShapes:
    def test_shapes_include_input(self):
        shapes = tiny_net().shapes(4)
        assert shapes[INPUT].dims == (4, 3, 224, 224)

    def test_batch_propagates(self):
        net = tiny_net()
        assert net.output_shape(16).batch == 16
        assert net.output_shape(1).batch == 1

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            tiny_net().shapes(0)

    def test_layer_infos_order_and_flops(self):
        infos = tiny_net().layer_infos(2)
        assert [i.name for i in infos] == ["conv", "relu", "flatten", "fc"]
        conv = infos[0]
        assert conv.flops == 2 * 8 * 224 * 224 * 3 * 9
        assert conv.input_nchw == 2 * 3 * 224 * 224
        assert conv.output_nchw == 2 * 8 * 224 * 224

    def test_layer_info_carries_layer_object(self):
        info = tiny_net().layer_infos(1)[0]
        assert isinstance(info.layer, Conv2d)


class TestAggregates:
    def test_total_flops_scales_linearly_with_batch(self):
        net = tiny_net()
        assert net.total_flops(8) == 8 * net.total_flops(1)

    def test_total_params_batch_independent(self):
        net = tiny_net()
        expected = (8 * 3 * 9) + (8 * 224 * 224 * 10 + 10)
        assert net.total_params() == expected

    def test_kinds(self):
        assert tiny_net().kinds() == ["CONV", "FC", "Flatten", "ReLU"]

    def test_summary_mentions_every_layer(self):
        text = tiny_net().summary(2)
        for name in ("conv", "relu", "flatten", "fc", "total"):
            assert name in text

    def test_len_and_contains(self):
        net = tiny_net()
        assert len(net) == 4
        assert "conv" in net
        assert "nope" not in net

    def test_empty_network_has_no_output(self):
        with pytest.raises(ValueError):
            Network("empty", IMAGENET).output_name
