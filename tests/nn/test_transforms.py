"""Tests for the CONV+BN+activation fusion transform."""

import pytest

from repro.nn import fuse_conv_bn_relu, fusion_summary
from repro.nn.graph import Network
from repro.nn.layers import Add, BatchNorm2d, Conv2d, ReLU
from repro.nn.tensor import TensorShape
from repro.zoo import densenet121, mobilenet_v2, resnet50, vgg16

IMG = TensorShape.image(1, 3, 32, 32)


def chain_net():
    net = Network("chain", IMG)
    net.add("conv", Conv2d(3, 8, 3, padding=1, bias=False))
    net.add("bn", BatchNorm2d(8))
    net.add("relu", ReLU())
    net.add("conv2", Conv2d(8, 8, 3, padding=1, bias=False))
    net.add("bn2", BatchNorm2d(8))
    return net


class TestBasicFusion:
    def test_full_chain_collapses(self):
        fused = fuse_conv_bn_relu(chain_net())
        assert len(fused) == 2
        assert fused.node("conv").layer.epilogue == ("BN", "ReLU")
        assert fused.node("conv2").layer.epilogue == ("BN",)

    def test_shapes_preserved(self):
        net = chain_net()
        fused = fuse_conv_bn_relu(net)
        assert fused.output_shape(4) == net.output_shape(4)

    def test_flops_preserved_exactly(self):
        net = chain_net()
        fused = fuse_conv_bn_relu(net)
        assert fused.total_flops(4) == net.total_flops(4)

    def test_params_preserved_exactly(self):
        net = chain_net()
        assert fuse_conv_bn_relu(net).total_params() == net.total_params()

    def test_no_fusable_chain_returns_same_network(self):
        net = Network("plain", IMG)
        net.add("relu", ReLU())
        assert fuse_conv_bn_relu(net) is net

    def test_idempotent(self):
        once = fuse_conv_bn_relu(chain_net())
        twice = fuse_conv_bn_relu(once)
        assert len(twice) == len(once)


class TestMultiConsumerSafety:
    def test_observed_intermediate_blocks_fusion(self):
        """A BN output consumed twice must stay materialised."""
        net = Network("branch", IMG)
        net.add("conv", Conv2d(3, 8, 3, padding=1, bias=False))
        net.add("bn", BatchNorm2d(8))
        net.add("relu", ReLU(), inputs=("bn",))
        net.add("join", Add(), inputs=("bn", "relu"))
        fused = fuse_conv_bn_relu(net)
        # conv+bn may fuse (conv feeds only bn) but relu must survive,
        # because bn's result is observed by the join
        assert "join" in fused
        assert "relu" in fused

    def test_conv_feeding_two_consumers_not_fused(self):
        net = Network("fan", IMG)
        net.add("conv", Conv2d(3, 8, 3, padding=1, bias=False))
        net.add("bn", BatchNorm2d(8), inputs=("conv",))
        net.add("bn_b", BatchNorm2d(8), inputs=("conv",))
        net.add("join", Add(), inputs=("bn", "bn_b"))
        fused = fuse_conv_bn_relu(net)
        assert fused.node("conv").layer.epilogue == ()


class TestZooFusion:
    @pytest.mark.parametrize("builder", [resnet50, vgg16, mobilenet_v2,
                                         densenet121])
    def test_fusion_preserves_semantics(self, builder):
        net = builder()
        fused = fuse_conv_bn_relu(net)
        removed, tagged = fusion_summary(net, fused)
        assert removed > 0
        assert tagged > 0
        assert fused.total_flops(8) == net.total_flops(8)
        assert fused.total_params() == net.total_params()
        assert fused.output_shape(8) == net.output_shape(8)

    def test_fused_networks_execute_faster(self):
        from repro.gpu import SimulatedGPU, gpu
        device = SimulatedGPU(gpu("A100"))
        net = resnet50()
        fused = fuse_conv_bn_relu(net)
        baseline = device.run_network(net, 64)
        optimised = device.run_network(fused, 64)
        assert optimised.e2e_us < baseline.e2e_us
        assert (len(optimised.kernel_executions)
                < len(baseline.kernel_executions))

    def test_fused_kernels_are_distinct_names(self):
        from repro.gpu.cudnn import kernel_calls
        fused = fuse_conv_bn_relu(resnet50())
        names = set()
        for info in fused.layer_infos(8):
            names.update(c.kernel.name for c in kernel_calls(info))
        assert any(name.endswith("_bnrelu") for name in names)


class TestFusedPrediction:
    def test_kw_model_predicts_fused_graphs(self, small_roster):
        """Train on fused executions, predict an unseen fused network."""
        from repro import core, dataset
        from repro.gpu import SimulatedGPU, gpu
        fused_roster = [fuse_conv_bn_relu(net) for net in small_roster]
        data = dataset.build_dataset(fused_roster, [gpu("A100")],
                                     batch_sizes=[64, 512])
        test_names = {"resnet50", "densenet121"}
        train = data.filter(
            networks=set(data.network_names()) - test_names)
        model = core.train_model(train, "kw", gpu="A100")
        device = SimulatedGPU(gpu("A100"))
        target = fuse_conv_bn_relu(resnet50())
        predicted = model.predict_network(target, 512)
        measured = device.run_network(target, 512).e2e_us
        assert predicted / measured == pytest.approx(1.0, abs=0.15)
