"""Unit tests for FLOPs aggregation (thop substitute)."""

import pytest

from repro.nn.flops import (
    arithmetic_intensity,
    dominant_kind,
    flops_by_kind,
    layer_flops,
    network_flops,
    network_gflops,
    profile_flops,
)
from repro.zoo import resnet18, resnet50, vgg16


@pytest.fixture(scope="module")
def r50():
    return resnet50()


class TestNetworkFlops:
    def test_resnet50_matches_published_value(self, r50):
        # published multiply-count: ~4.1 GFLOPs at batch 1
        assert network_gflops(r50, 1) == pytest.approx(4.1, rel=0.05)

    def test_vgg16_matches_published_value(self):
        assert network_gflops(vgg16(), 1) == pytest.approx(15.5, rel=0.05)

    def test_resnet18_matches_published_value(self):
        assert network_gflops(resnet18(), 1) == pytest.approx(1.8, rel=0.05)

    def test_flops_linear_in_batch(self, r50):
        assert network_flops(r50, 64) == 64 * network_flops(r50, 1)

    def test_layer_flops_sum_to_network(self, r50):
        per_layer = layer_flops(r50, 2)
        assert sum(f for _, f in per_layer) == network_flops(r50, 2)

    def test_profile_flops_params(self, r50):
        flops, params = profile_flops(r50)
        assert flops == network_flops(r50, 1)
        assert params == pytest.approx(25.6e6, rel=0.02)


class TestByKind:
    def test_conv_dominates_cnns(self, r50):
        assert dominant_kind(r50) == "CONV"

    def test_kind_totals_sum_to_network(self, r50):
        totals = flops_by_kind(r50, 1)
        assert sum(totals.values()) == network_flops(r50, 1)

    def test_kinds_present(self, r50):
        totals = flops_by_kind(r50, 1)
        for kind in ("CONV", "BN", "ReLU", "FC"):
            assert kind in totals


class TestArithmeticIntensity:
    def test_conv_much_denser_than_bn(self, r50):
        infos = {i.name: i for i in r50.layer_infos(8)}
        conv_ai = max(arithmetic_intensity(i) for i in infos.values()
                      if i.kind == "CONV")
        bn_ai = max(arithmetic_intensity(i) for i in infos.values()
                    if i.kind == "BN")
        assert conv_ai > 10 * bn_ai

    def test_zero_flops_layer_has_zero_intensity(self, r50):
        flatten = next(i for i in r50.layer_infos(1) if i.kind == "Flatten")
        assert arithmetic_intensity(flatten) == 0.0
