"""Tests for model persistence (save/load JSON round-trips)."""

import pytest

from repro.core import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
    train_inter_gpu_model,
    train_model,
)
from repro.core.e2e import EndToEndModel
from repro.gpu import gpu


@pytest.fixture(scope="module")
def trained_models(request):
    train, _ = request.getfixturevalue("small_split")
    return {
        "e2e": train_model(train, "e2e", gpu="A100"),
        "lw": train_model(train, "lw", gpu="A100"),
        "kw": train_model(train, "kw", gpu="A100"),
        "igkw": train_inter_gpu_model(train,
                                      [gpu("A100"), gpu("TITAN RTX")]),
    }


class TestRoundTrips:
    @pytest.mark.parametrize("name", ["e2e", "lw", "kw"])
    def test_single_gpu_models_round_trip(self, trained_models,
                                          small_roster, tmp_path, name):
        original = trained_models[name]
        restored = load_model(save_model(original,
                                         tmp_path / f"{name}.json"))
        for net in small_roster[:4]:
            assert restored.predict_network(net, 512) == pytest.approx(
                original.predict_network(net, 512))

    def test_igkw_round_trip(self, trained_models, small_roster, tmp_path):
        original = trained_models["igkw"]
        restored = load_model(save_model(original, tmp_path / "igkw.json"))
        target = gpu("V100")
        for net in small_roster[:4]:
            assert (restored.for_gpu(target).predict_network(net, 64)
                    == pytest.approx(
                        original.for_gpu(target).predict_network(net, 64)))

    def test_kw_metadata_preserved(self, trained_models, tmp_path):
        original = trained_models["kw"]
        restored = load_model(save_model(original, tmp_path / "kw.json"))
        assert restored.mode == original.mode
        assert restored.n_kernels == original.n_kernels
        assert restored.n_models == original.n_models

    def test_document_is_json_compatible(self, trained_models):
        import json
        for model in trained_models.values():
            json.dumps(model_to_dict(model))   # must not raise


class TestValidation:
    def test_untrained_model_rejected(self):
        with pytest.raises(ValueError):
            model_to_dict(EndToEndModel())

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            model_to_dict(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            model_from_dict({"format_version": 1, "kind": "magic"})

    def test_version_mismatch_rejected(self):
        with pytest.raises(ValueError):
            model_from_dict({"format_version": 99, "kind": "e2e"})

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope.json")
