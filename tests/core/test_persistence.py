"""Tests for model persistence (save/load JSON round-trips)."""

import json

import pytest

from repro.core import (
    check_format_version,
    load_document,
    load_model,
    model_from_dict,
    model_to_dict,
    save_document,
    save_model,
    train_inter_gpu_model,
    train_model,
)
from repro.core.e2e import EndToEndModel
from repro.core.persistence import FORMAT_VERSION
from repro.gpu import gpu


@pytest.fixture(scope="module")
def trained_models(request):
    train, _ = request.getfixturevalue("small_split")
    return {
        "e2e": train_model(train, "e2e", gpu="A100"),
        "lw": train_model(train, "lw", gpu="A100"),
        "kw": train_model(train, "kw", gpu="A100"),
        "igkw": train_inter_gpu_model(train,
                                      [gpu("A100"), gpu("TITAN RTX")]),
    }


def _as_predictor(model, kind):
    """A directly-callable predictor: IGKW must first pick a target GPU."""
    if kind == "igkw":
        return model.for_gpu(gpu("V100"))
    return model


class TestAllKindsRoundTrip:
    """Every persistable kind survives save -> load bit-exactly."""

    @pytest.mark.parametrize("kind", ["e2e", "lw", "kw", "igkw"])
    @pytest.mark.parametrize("batch_size", [64, 512])
    def test_predictions_identical_after_reload(self, trained_models,
                                                small_roster, tmp_path,
                                                kind, batch_size):
        original = trained_models[kind]
        restored = load_model(save_model(
            original, tmp_path / f"{kind}-{batch_size}.json"))
        before = _as_predictor(original, kind)
        after = _as_predictor(restored, kind)
        for net in small_roster:
            assert after.predict_network(net, batch_size) == \
                pytest.approx(before.predict_network(net, batch_size))

    @pytest.mark.parametrize("kind", ["e2e", "lw", "kw", "igkw"])
    def test_document_round_trips_through_dicts(self, trained_models,
                                                small_roster, kind):
        document = model_to_dict(trained_models[kind])
        assert document["kind"] == kind
        restored = _as_predictor(model_from_dict(document), kind)
        original = _as_predictor(trained_models[kind], kind)
        net = small_roster[0]
        assert restored.predict_network(net, 64) == pytest.approx(
            original.predict_network(net, 64))


class TestRoundTrips:
    @pytest.mark.parametrize("name", ["e2e", "lw", "kw"])
    def test_single_gpu_models_round_trip(self, trained_models,
                                          small_roster, tmp_path, name):
        original = trained_models[name]
        restored = load_model(save_model(original,
                                         tmp_path / f"{name}.json"))
        for net in small_roster[:4]:
            assert restored.predict_network(net, 512) == pytest.approx(
                original.predict_network(net, 512))

    def test_igkw_round_trip(self, trained_models, small_roster, tmp_path):
        original = trained_models["igkw"]
        restored = load_model(save_model(original, tmp_path / "igkw.json"))
        target = gpu("V100")
        for net in small_roster[:4]:
            assert (restored.for_gpu(target).predict_network(net, 64)
                    == pytest.approx(
                        original.for_gpu(target).predict_network(net, 64)))

    def test_kw_metadata_preserved(self, trained_models, tmp_path):
        original = trained_models["kw"]
        restored = load_model(save_model(original, tmp_path / "kw.json"))
        assert restored.mode == original.mode
        assert restored.n_kernels == original.n_kernels
        assert restored.n_models == original.n_models

    def test_document_is_json_compatible(self, trained_models):
        import json
        for model in trained_models.values():
            json.dumps(model_to_dict(model))   # must not raise


class TestValidation:
    def test_untrained_model_rejected(self):
        with pytest.raises(ValueError):
            model_to_dict(EndToEndModel())

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            model_to_dict(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            model_from_dict({"format_version": 1, "kind": "magic"})

    def test_version_mismatch_rejected(self):
        with pytest.raises(ValueError):
            model_from_dict({"format_version": 99, "kind": "e2e"})

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope.json")


class TestFormatVersioning:
    """Forward-compatibility: foreign versions fail loudly, not weirdly."""

    @pytest.mark.parametrize("version", [FORMAT_VERSION + 1, 0, None, "1"])
    def test_foreign_version_rejected_by_name(self, version):
        with pytest.raises(ValueError) as exc:
            check_format_version({"format_version": version, "kind": "e2e"})
        # the message must tell the operator which version this build reads
        assert f"version {FORMAT_VERSION}" in str(exc.value)
        assert repr(version) in str(exc.value)

    def test_load_document_checks_version(self, tmp_path, trained_models):
        path = tmp_path / "future.json"
        document = model_to_dict(trained_models["e2e"])
        document["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unsupported model format"):
            load_document(path)
        with pytest.raises(ValueError, match="unsupported model format"):
            load_model(path)

    def test_extra_document_sections_survive_and_load(self, tmp_path,
                                                      trained_models,
                                                      small_roster):
        """Calibration lineage and statistics ride along untouched."""
        document = model_to_dict(trained_models["kw"])
        document["calibration"] = {"version": 2, "parent": 1,
                                   "trigger": "drift:network",
                                   "refit_samples": 16}
        document["sufficient_stats"] = {
            "__pooled__": {"n": 2, "w_sum": 2.0, "sx": 3.0, "sy": 4.0,
                           "sxx": 5.0, "sxy": 6.0, "syy": 7.0}}
        path = save_document(document, tmp_path / "versioned.json")
        # the extra sections are preserved byte-exactly on disk...
        reread = load_document(path)
        assert reread["calibration"] == document["calibration"]
        assert reread["sufficient_stats"] == document["sufficient_stats"]
        # ...and the predictor loads as if they were absent
        restored = load_model(path)
        original = trained_models["kw"]
        net = small_roster[0]
        assert restored.predict_network(net, 64) == pytest.approx(
            original.predict_network(net, 64))


class TestAtomicSave:
    def test_creates_parent_directories(self, tmp_path, trained_models):
        path = tmp_path / "deep" / "nested" / "model.json"
        save_model(trained_models["e2e"], path)
        assert path.is_file()

    def test_overwrite_leaves_no_temp_files(self, tmp_path, trained_models):
        path = tmp_path / "model.json"
        for _ in range(3):
            save_model(trained_models["e2e"], path)
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]

    def test_failed_write_leaves_target_untouched(self, tmp_path,
                                                  trained_models):
        path = save_model(trained_models["e2e"], tmp_path / "model.json")
        before = path.read_bytes()
        with pytest.raises(TypeError):
            save_document({"fit": object()}, path)   # not JSON-serialisable
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]
