"""Tests for the OLS linear regression substrate."""

import pytest

from repro.core.linreg import LinearFit, fit_from_pairs, fit_line


class TestExactFits:
    def test_perfect_line(self):
        fit = fit_line([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.n_samples == 4

    def test_through_origin(self):
        fit = fit_line([1, 2, 4], [2.1, 3.9, 8.0], through_origin=True)
        assert fit.intercept == 0.0
        assert fit.slope == pytest.approx(2.0, rel=0.05)

    def test_predict(self):
        fit = LinearFit(2.0, 1.0, 1.0, 4)
        assert fit.predict(10) == 21.0
        assert fit.predict_many([0, 1]) == [1.0, 3.0]

    def test_rate_is_reciprocal_slope(self):
        assert LinearFit(0.25, 0.0, 1.0, 2).rate == 4.0

    def test_rate_of_flat_fit_rejected(self):
        with pytest.raises(ZeroDivisionError):
            LinearFit(0.0, 5.0, 0.0, 2).rate

    def test_fit_from_pairs(self):
        fit = fit_from_pairs([(0, 1), (1, 3), (2, 5)])
        assert fit.slope == pytest.approx(2.0)


class TestNoisyFits:
    def test_r2_below_one_with_noise(self):
        ys = [2 * x + (1 if x % 2 else -1) for x in range(20)]
        fit = fit_line(list(range(20)), ys)
        assert 0.9 < fit.r2 < 1.0

    def test_relative_weighting_favours_small_points(self):
        # one large outlier point: absolute LS chases it, relative LS not
        xs = [1, 2, 3, 1000]
        ys = [1, 2, 3, 3000]   # big point is 3x the small-point trend
        absolute = fit_line(xs, ys)
        relative = fit_line(xs, ys, relative=True)
        assert abs(relative.slope - 1.0) < abs(absolute.slope - 1.0)


class TestDegenerateInputs:
    def test_single_point_flat_line(self):
        fit = fit_line([5], [42])
        assert fit.slope == 0.0
        assert fit.intercept == 42.0
        assert fit.r2 == 0.0

    def test_single_point_through_origin(self):
        fit = fit_line([4], [8], through_origin=True)
        assert fit.slope == pytest.approx(2.0)

    def test_constant_x_flat_line(self):
        fit = fit_line([3, 3, 3], [1, 2, 3])
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(2.0)

    def test_constant_y_perfect_horizontal(self):
        fit = fit_line([1, 2, 3], [7, 7, 7])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r2 == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_line([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_line([1, 2], [1])

    def test_str_representation(self):
        text = str(fit_line([1, 2], [2, 4]))
        assert "R2" in text
