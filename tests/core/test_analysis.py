"""Tests for prediction error analysis."""

import pytest

from repro.core import error_breakdown, train_model
from repro.core.analysis import ErrorBreakdown, NetworkError
from repro.dataset import PerformanceDataset


def entry(name, family, predicted, measured):
    return NetworkError(name, family, predicted, measured)


class TestErrorBreakdownMath:
    def make(self):
        return ErrorBreakdown("KW", "A100", (
            entry("a1", "alpha", 110.0, 100.0),
            entry("a2", "alpha", 95.0, 100.0),
            entry("b1", "beta", 200.0, 100.0),
        ))

    def test_mean_error(self):
        assert self.make().mean_error == pytest.approx(
            (0.1 + 0.05 + 1.0) / 3)

    def test_family_ranking_worst_first(self):
        families = self.make().by_family()
        assert [f.family for f in families] == ["beta", "alpha"]
        assert families[0].mean_error == pytest.approx(1.0)
        assert families[1].count == 2

    def test_worst_offenders(self):
        worst = self.make().worst(2)
        assert [e.network for e in worst] == ["b1", "a1"]

    def test_systematic_bias_sign(self):
        over = ErrorBreakdown("m", "g", (
            entry("x", "f", 130.0, 100.0),
            entry("y", "f", 120.0, 100.0),
            entry("z", "f", 90.0, 100.0),
        ))
        assert over.systematic_bias() > 0

    def test_render_sections(self):
        text = self.make().render()
        assert "mean error" in text
        assert "beta" in text
        assert "worst offenders" in text


class TestAgainstRealModel:
    def test_breakdown_matches_evaluate(self, small_split, roster_index):
        train, test = small_split
        model = train_model(train, "kw", gpu="A100")
        breakdown = error_breakdown(model, test, roster_index, gpu="A100",
                                    batch_size=512)
        from repro.core import evaluate_model
        curve = evaluate_model(model, test, roster_index, gpu="A100",
                               batch_size=512)
        assert breakdown.mean_error == pytest.approx(curve.mean_error)

    def test_families_cover_test_networks(self, small_split, roster_index):
        train, test = small_split
        model = train_model(train, "kw", gpu="A100")
        breakdown = error_breakdown(model, test, roster_index, gpu="A100",
                                    batch_size=512)
        names = {e.network for e in breakdown.entries}
        assert names == set(test.network_names())

    def test_empty_match_rejected(self, small_split, roster_index):
        train, test = small_split
        model = train_model(train, "kw", gpu="A100")
        with pytest.raises(ValueError):
            error_breakdown(model, PerformanceDataset(), roster_index,
                            gpu="A100")
