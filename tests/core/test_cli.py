"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def built_dataset_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "data"
    code = main(["build", "--roster", "small", "--gpu", "A100",
                 "--gpu", "TITAN RTX", "--batch-size", "64",
                 "--batch-size", "512", "--out", str(out)])
    assert code == 0
    return out


@pytest.fixture(scope="module")
def trained_model_path(built_dataset_dir, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-model") / "kw.json"
    code = main(["train", "--dataset", str(built_dataset_dir), "--model",
                 "kw", "--gpu", "A100", "--out", str(path)])
    assert code == 0
    return path


class TestBuild:
    def test_build_writes_tables(self, built_dataset_dir):
        for name in ("kernels.csv", "layers.csv", "networks.csv"):
            assert (built_dataset_dir / name).exists()


class TestTrainAndPredict:
    def test_train_writes_model(self, trained_model_path):
        assert trained_model_path.exists()

    def test_predict_prints_time(self, trained_model_path, capsys):
        code = main(["predict", "--model", str(trained_model_path),
                     "--network", "resnet50", "--batch-size", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "ms" in out

    def test_predict_unknown_network_exits_2(self, trained_model_path,
                                             capsys):
        code = main(["predict", "--model", str(trained_model_path),
                     "--network", "resnet9000", "--batch-size", "64"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "resnet9000" in err

    def test_evaluate_prints_curve(self, trained_model_path,
                                   built_dataset_dir, capsys):
        code = main(["evaluate", "--model", str(trained_model_path),
                     "--dataset", str(built_dataset_dir), "--gpu", "A100",
                     "--batch-size", "512", "--test-fraction", "0.25",
                     "--seed", "3"])
        assert code == 0
        assert "mean error" in capsys.readouterr().out

    def test_evaluate_breakdown_flag(self, trained_model_path,
                                     built_dataset_dir, capsys):
        code = main(["evaluate", "--model", str(trained_model_path),
                     "--dataset", str(built_dataset_dir), "--gpu", "A100",
                     "--batch-size", "512", "--test-fraction", "0.25",
                     "--seed", "3", "--breakdown"])
        assert code == 0
        assert "worst offenders" in capsys.readouterr().out

    def test_predict_coverage_flag(self, trained_model_path, capsys):
        code = main(["predict", "--model", str(trained_model_path),
                     "--network", "resnet50", "--batch-size", "64",
                     "--coverage"])
        assert code == 0
        assert "coverage of" in capsys.readouterr().out


class TestIGKW:
    def test_train_igkw_and_predict_with_bandwidth(self, built_dataset_dir,
                                                   tmp_path, capsys):
        path = tmp_path / "igkw.json"
        assert main(["train-igkw", "--dataset", str(built_dataset_dir),
                     "--gpu", "A100", "--gpu", "TITAN RTX", "--out",
                     str(path)]) == 0
        assert main(["predict", "--model", str(path), "--network",
                     "resnet50", "--batch-size", "64", "--gpu", "V100",
                     "--bandwidth", "1200"]) == 0
        assert "ms" in capsys.readouterr().out

    def test_igkw_predict_requires_gpu(self, built_dataset_dir, tmp_path,
                                       capsys):
        path = tmp_path / "igkw2.json"
        main(["train-igkw", "--dataset", str(built_dataset_dir), "--gpu",
              "A100", "--gpu", "TITAN RTX", "--out", str(path)])
        code = main(["predict", "--model", str(path), "--network",
                     "resnet50", "--batch-size", "64"])
        assert code == 2


class TestRobustness:
    """Bad paths and bad names exit 2 with one stderr line, no traceback."""

    def test_predict_missing_model_file(self, tmp_path, capsys):
        code = main(["predict", "--model", str(tmp_path / "absent.json"),
                     "--network", "resnet50", "--batch-size", "64"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "absent.json" in err

    def test_train_missing_dataset_dir(self, tmp_path, capsys):
        code = main(["train", "--dataset", str(tmp_path / "nowhere"),
                     "--model", "kw", "--gpu", "A100",
                     "--out", str(tmp_path / "out.json")])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_evaluate_missing_model_file(self, built_dataset_dir,
                                         tmp_path, capsys):
        code = main(["evaluate", "--model", str(tmp_path / "gone.json"),
                     "--dataset", str(built_dataset_dir),
                     "--gpu", "A100"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_error_is_single_line(self, tmp_path, capsys):
        main(["predict", "--model", str(tmp_path / "absent.json"),
              "--network", "resnet50", "--batch-size", "64"])
        err = capsys.readouterr().err
        assert err.count("\n") == 1 and "Traceback" not in err


class TestList:
    def test_list_networks(self, capsys):
        assert main(["list", "networks"]) == 0
        assert "resnet50" in capsys.readouterr().out

    def test_list_gpus(self, capsys):
        assert main(["list", "gpus"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "GB/s" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
