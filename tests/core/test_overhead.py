"""Tests for the launch-overhead-aware model (small-workload extension)."""

import pytest

from repro.core import evaluate_model, train_model
from repro.core.overhead import OverheadAwareModel
from repro.dataset import PerformanceDataset


@pytest.fixture(scope="module")
def models(request):
    train, _ = request.getfixturevalue("small_split")
    base = train_model(train, "kw", gpu="A100", batch_size=None)
    wrapped = OverheadAwareModel(base).train(train.for_gpu("A100"))
    return base, wrapped


class TestTraining:
    def test_learns_positive_per_launch_cost(self, models):
        _, wrapped = models
        # each launch hides a few microseconds of startup end-to-end
        assert 0.0 < wrapped.overhead_fit.slope < 20.0

    def test_untrained_rejects_prediction(self, models, roster_index):
        base, _ = models
        fresh = OverheadAwareModel(base)
        with pytest.raises(RuntimeError):
            fresh.predict_network(roster_index["resnet18"], 8)

    def test_empty_dataset_rejected(self, models):
        base, _ = models
        with pytest.raises(ValueError):
            OverheadAwareModel(base).train(PerformanceDataset())


class TestPredictions:
    def test_correction_reduces_predictions(self, models, roster_index):
        """The wrapper subtracts hidden overhead, never adds."""
        base, wrapped = models
        for name in ("resnet18", "vgg11", "mobilenet_v2"):
            net = roster_index[name]
            for batch in (8, 64, 512):
                assert (wrapped.predict_network(net, batch)
                        <= base.predict_network(net, batch))

    def test_correction_is_bounded(self, models, roster_index):
        """The sanity floor prevents over-correction."""
        base, wrapped = models
        net = roster_index["mobilenet_v2"]
        assert (wrapped.predict_network(net, 8)
                >= 0.25 * base.predict_network(net, 8))

    def test_large_batch_accuracy_preserved(self, models, small_split,
                                            roster_index):
        base, wrapped = models
        _, test = small_split
        base_curve = evaluate_model(base, test, roster_index, gpu="A100",
                                    batch_size=512)
        wrapped_curve = evaluate_model(wrapped, test, roster_index,
                                       gpu="A100", batch_size=512)
        assert wrapped_curve.mean_error <= base_curve.mean_error + 0.02

    def test_small_batch_bias_reduced(self, models, small_split,
                                      roster_index):
        """The systematic small-batch overestimate must not grow."""
        base, wrapped = models
        _, test = small_split
        base_curve = evaluate_model(base, test, roster_index, gpu="A100",
                                    batch_size=64)
        wrapped_curve = evaluate_model(wrapped, test, roster_index,
                                       gpu="A100", batch_size=64)
        assert (abs(wrapped_curve.median_ratio - 1.0)
                <= abs(base_curve.median_ratio - 1.0) + 0.01)

    def test_layer_predictions_delegate(self, models, roster_index):
        base, wrapped = models
        info = roster_index["resnet18"].layer_infos(8)[0]
        assert wrapped.predict_layer(info) == base.predict_layer(info)
