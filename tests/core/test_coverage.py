"""Tests for prediction-coverage diagnostics."""

import pytest

from repro.core import coverage_report, train_model
from repro.core.coverage import EXACT, FALLBACK, NEAR
from repro.zoo import resnet, resnet50, vit_tiny


@pytest.fixture(scope="module")
def kw(request):
    train, _ = request.getfixturevalue("small_split")
    return train_model(train, "kw", gpu="A100")


class TestCoverageReport:
    def test_training_roster_net_is_fully_exact(self, kw, roster_index):
        report = coverage_report(kw, roster_index["resnet18"], 512)
        assert report.layer_share(EXACT) == pytest.approx(1.0)
        assert report.trustworthy

    def test_held_out_similar_net_mostly_covered(self, kw):
        # resnet50 is held out of the fixture's training split, but its
        # kernels exist in training via densenet/mobilenet/resnet18
        report = coverage_report(kw, resnet50(), 512)
        assert report.layer_share(FALLBACK) < 0.05
        assert report.trustworthy

    def test_alien_family_flagged_as_degraded(self, kw):
        # nothing transformer-like is in the small training roster
        report = coverage_report(kw, vit_tiny(), 64)
        assert report.time_share(FALLBACK) > 0.10
        assert not report.trustworthy

    def test_unseen_depth_variant_uses_nearest_buckets(self, kw):
        # same dispatch bases as training resnets, different size buckets
        variant = resnet([3, 4, 8, 3], width=48, name="probe_resnet")
        report = coverage_report(kw, variant, 512)
        assert report.layer_share(NEAR) > 0.0
        assert report.layer_share(FALLBACK) < 0.1

    def test_shares_partition(self, kw, roster_index):
        report = coverage_report(kw, roster_index["vgg11"], 512)
        total_layers = (report.layer_share(EXACT)
                        + report.layer_share(NEAR)
                        + report.layer_share(FALLBACK))
        assert total_layers == pytest.approx(1.0)
        total_time = (report.time_share(EXACT) + report.time_share(NEAR)
                      + report.time_share(FALLBACK))
        assert total_time == pytest.approx(1.0)

    def test_total_matches_prediction(self, kw, roster_index):
        net = roster_index["vgg11"]
        report = coverage_report(kw, net, 512)
        assert report.total_us == pytest.approx(
            kw.predict_network(net, 512))

    def test_render_shows_stages(self, kw, roster_index):
        text = coverage_report(kw, roster_index["resnet18"], 64).render()
        assert "exact" in text
        assert "trustworthy" in text

    def test_degraded_render_lists_fallback_layers(self, kw):
        text = coverage_report(kw, vit_tiny(), 64).render()
        assert "DEGRADED" in text
        assert "fallback:" in text
