"""Tests for the shared PerformanceModel interface."""

import pytest

from repro.core import networks_by_name, train_model


class TestEvaluate:
    def test_batch_filter(self, small_split, roster_index):
        train, test = small_split
        model = train_model(train, "e2e", gpu="A100", batch_size=None)
        at_64 = model.evaluate(test.for_gpu("A100"), roster_index,
                               batch_size=64)
        at_512 = model.evaluate(test.for_gpu("A100"), roster_index,
                                batch_size=512)
        # same networks, different measurement points
        assert at_64.labels != () and set(at_64.labels) == set(
            at_512.labels)
        assert at_64.ratios != at_512.ratios

    def test_missing_networks_are_skipped(self, small_split, roster_index):
        train, test = small_split
        model = train_model(train, "e2e", gpu="A100")
        partial_index = {name: net for name, net in roster_index.items()
                         if name == "resnet50"}
        curve = model.evaluate(test.for_gpu("A100"), partial_index,
                               batch_size=512)
        assert curve.labels == ("resnet50",)

    def test_unfiltered_batches_all_scored(self, small_split,
                                           roster_index):
        # batch_size=None must keep one point per (network, batch) —
        # the old name-keyed dict silently overwrote the bs-64 row with
        # the bs-512 row for every network
        train, test = small_split
        model = train_model(train, "e2e", gpu="A100", batch_size=None)
        both = model.evaluate(test.for_gpu("A100"), roster_index,
                              batch_size=None)
        at_64 = model.evaluate(test.for_gpu("A100"), roster_index,
                               batch_size=64)
        at_512 = model.evaluate(test.for_gpu("A100"), roster_index,
                                batch_size=512)
        assert len(both.labels) == len(at_64.labels) + len(at_512.labels)
        # labels disambiguate the batch size when a network has several
        assert {f"{name}@bs64" for name in at_64.labels} <= set(
            both.labels)
        assert sorted(both.ratios) == sorted(at_64.ratios +
                                             at_512.ratios)

    def test_single_batch_labels_stay_bare(self, small_split,
                                           roster_index):
        train, test = small_split
        model = train_model(train, "e2e", gpu="A100")
        curve = model.evaluate(test.for_gpu("A100"), roster_index,
                               batch_size=512)
        assert all("@bs" not in label for label in curve.labels)

    def test_no_overlap_rejected(self, small_split):
        train, test = small_split
        model = train_model(train, "e2e", gpu="A100")
        with pytest.raises(ValueError):
            model.evaluate(test.for_gpu("A100"), {}, batch_size=512)

    def test_predict_network_ms_scaling(self, small_split, roster_index):
        train, _ = small_split
        model = train_model(train, "e2e", gpu="A100")
        net = roster_index["resnet18"]
        assert model.predict_network_ms(net, 64) == pytest.approx(
            model.predict_network(net, 64) / 1e3)

    def test_networks_by_name_index(self, small_roster):
        index = networks_by_name(small_roster)
        assert len(index) == len(small_roster)
        assert index["resnet18"].name == "resnet18"


class TestContext:
    def test_context_caches_are_shared(self):
        from repro.studies import context
        assert context.standard_roster() is context.standard_roster()

    def test_text_campaign_is_transformer_only(self):
        from repro.studies import context
        assert all(net.family == "transformer"
                   for net in context.text_index().values())

    def test_standard_gpus_cover_paper_evaluation(self):
        from repro.studies import context
        assert set(context.STANDARD_GPUS) == {
            "A100", "A40", "GTX 1080 Ti", "TITAN RTX", "V100"}
