"""Plan optimizer + AOT compile store: every pass is bit-exact.

The optimizer (line interning, constant folding, fused fallback lines)
and the persisted bundles exist purely to move work earlier; the suite's
job is proving they never move a *number*. Exact float equality is the
contract here, not a test smell: an AOT-loaded plan replays the fresh
plan's arithmetic or it is wrong.
"""

from __future__ import annotations

import json

import pytest

from repro import zoo
from repro.core.linreg import LinearFit
from repro.core.plan import KernelPlan, RetargetablePlan
from repro.core.planopt import (
    BundleMismatch,
    FallbackLinePool,
    LayerBodyPool,
    LinePool,
    build_bundle,
    bundle_coverage,
    bundle_path_for,
    compile_store,
    constant_fold,
    load_bundle,
    load_plans,
    optimize_plans,
    plan_from_dict,
    plan_to_dict,
    save_bundle,
)
from repro.core.persistence import save_model
from repro.core.workflow import train_inter_gpu_model, train_model
from repro.gpu import gpu

#: Matches tests/core/test_plan.py: small, and unseen by the campaign.
PARITY_BS = 4


@pytest.fixture(scope="module")
def models(small_dataset):
    trained = {kind: train_model(small_dataset, kind, gpu="A100",
                                 batch_size=64)
               for kind in ("e2e", "lw", "kw")}
    trained["igkw"] = train_inter_gpu_model(
        small_dataset, [gpu("A100"), gpu("TITAN RTX")], batch_size=64)
    return trained


@pytest.fixture(scope="module")
def store_dir(models, tmp_path_factory):
    """A model directory with saved models AND compiled bundles.

    Bundles cover every zoo network at PARITY_BS — the cold-start parity
    suite sweeps all of them.
    """
    directory = tmp_path_factory.mktemp("aot-store")
    for kind, model in models.items():
        save_model(model, directory / f"{kind}.json")
    networks = [zoo.build(name) for name in zoo.model_names()]
    for kind, model in models.items():
        path = directory / f"{kind}.json"
        save_bundle(build_bundle(model, path, networks, [PARITY_BS]), path)
    return directory


@pytest.fixture(scope="module")
def loaded_plans(models, store_dir):
    """kind -> {(network, batch): revived plan} for every bundle."""
    return {kind: load_bundle(store_dir / f"{kind}.json", model)
            for kind, model in models.items()}


class TestLinePool:
    def test_interns_by_value(self):
        pool = LinePool()
        a = pool.intern(LinearFit(1.0, 2.0, 0.9, 10))
        b = pool.intern(LinearFit(1.0, 2.0, 0.9, 10))   # same numbers
        c = pool.intern(LinearFit(1.0, 2.5, 0.9, 10))   # one differs
        assert a == b
        assert a != c
        assert len(pool) == 2
        assert pool.references == 3

    def test_fit_at_returns_interned_value(self):
        pool = LinePool()
        fit = LinearFit(0.5, 1.5, 0.8, 7)
        assert pool.fit_at(pool.intern(fit)) == fit

    def test_round_trips_through_json(self):
        pool = LinePool()
        pool.intern(LinearFit(1.0 / 3.0, 2.0 / 7.0, 0.123456789, 42))
        revived = LinePool.from_list(json.loads(json.dumps(pool.to_list())))
        # shortest-round-trip repr: the floats come back identical
        assert revived.fit_at(0) == pool.fit_at(0)


class TestConstantFold:
    def test_folds_single_target_to_bound_plan(self, models):
        plan = models["igkw"].compile(zoo.build("resnet18"), PARITY_BS)
        target = gpu("V100")
        folded = constant_fold(plan, [target, target])
        assert isinstance(folded, KernelPlan)
        assert folded.evaluate() == plan.evaluate(gpu=target)

    def test_distinct_targets_stay_retargetable(self, models):
        plan = models["igkw"].compile(zoo.build("resnet18"), PARITY_BS)
        assert constant_fold(plan, [gpu("V100"), gpu("A100")]) is plan
        # same GPU at two bandwidths is two targets, not one
        base = gpu("V100")
        assert constant_fold(
            plan, [base, base.with_bandwidth(600.0)]) is plan

    def test_non_retargetable_plans_pass_through(self, models):
        plan = models["kw"].compile(zoo.build("resnet18"), PARITY_BS)
        assert constant_fold(plan, [gpu("V100")]) is plan


class TestFallbackFusion:
    def test_warm_is_bit_exact_with_lazy(self, models):
        network = zoo.build("squeezenet1_1")   # exercises fallback layers
        target = gpu("V100")
        fresh = models["igkw"].compile(network, PARITY_BS)
        expected = fresh.evaluate(gpu=target)
        warmed = models["igkw"].compile(network, PARITY_BS)
        optimize_plans([warmed])
        assert warmed.evaluate(gpu=target) == expected

    def test_fuses_one_matrix_per_model(self, models):
        plans = [models["igkw"].compile(zoo.build(name), PARITY_BS)
                 for name in ("resnet18", "resnet34", "squeezenet1_1")]
        pool = optimize_plans(plans)
        assert pool.plans_warmed == 3
        # three plans, but the campaign trained two GPUs sharing LW
        # fallbacks — far fewer matrices than plans x models
        assert pool.models_fused <= 2
        gathered = sum(len(plan.lowering().fallback_kinds)
                       for plan in plans) * pool.models_fused
        assert pool.rows_gathered == gathered

    def test_pool_ignores_non_retargetable(self, models):
        pool = optimize_plans(
            [models["kw"].compile(zoo.build("resnet18"), PARITY_BS)])
        assert isinstance(pool, FallbackLinePool)
        assert pool.plans_warmed == 0


def _round_trip(plan, model):
    """Serialise through real JSON and revive with fresh pools."""
    pool, bodies = LinePool(), LayerBodyPool()
    payload = json.loads(json.dumps(plan_to_dict(plan, pool, bodies)))
    revived_bodies = LayerBodyPool.from_list(
        json.loads(json.dumps(bodies.to_list())))
    return plan_from_dict(payload, pool, revived_bodies, model)


class TestLayerBodyPool:
    def test_repeated_blocks_intern_to_one_body(self, models):
        plan = models["kw"].compile(zoo.build("densenet121"), PARITY_BS)
        bodies = LayerBodyPool()
        plan_to_dict(plan, LinePool(), bodies)
        # a densenet repeats block shapes: fewer distinct bodies than
        # layers (growth of concat widths keeps it from collapsing more)
        assert bodies.references == len(plan.layers)
        assert len(bodies) < len(plan.layers) * 0.6

    def test_revive_builds_each_body_once(self):
        bodies = LayerBodyPool.from_list([{"value": 7}])
        built = []
        first = bodies.revive("kernel", 0,
                              lambda body: built.append(body) or ("x",))
        second = bodies.revive("kernel", 0,
                               lambda body: built.append(body) or ("y",))
        assert first is second      # shared, not rebuilt
        assert built == [{"value": 7}]


class TestPlanDocumentRoundTrip:
    @pytest.mark.parametrize("kind", ["e2e", "lw", "kw"])
    def test_single_gpu_plans_round_trip(self, models, kind):
        model = models[kind]
        plan = model.compile(zoo.build("resnet18"), PARITY_BS)
        revived = _round_trip(plan, model)
        assert revived.evaluate() == plan.evaluate()
        assert revived.network_name == "resnet18"
        assert revived.batch_size == PARITY_BS

    def test_retargetable_round_trip_keeps_grid(self, models):
        model = models["igkw"]
        plan = model.compile(zoo.build("resnet18"), PARITY_BS)
        revived = _round_trip(plan, model)
        assert isinstance(revived, RetargetablePlan)
        targets = (gpu("V100"), gpu("V100").with_bandwidth(600.0),
                   gpu("A100"))
        assert revived.evaluate_grid(targets) == plan.evaluate_grid(targets)

    def test_retargetable_needs_igkw_model(self, models):
        plan = models["igkw"].compile(zoo.build("resnet18"), PARITY_BS)
        pool, bodies = LinePool(), LayerBodyPool()
        payload = plan_to_dict(plan, pool, bodies)
        with pytest.raises(BundleMismatch, match="igkw"):
            plan_from_dict(payload, pool, bodies, models["kw"])

    def test_overhead_plans_are_rejected(self, models, small_split):
        from repro.core.overhead import OverheadAwareModel
        train, _ = small_split
        wrapped = OverheadAwareModel(models["kw"]).train(
            train.for_gpu("A100"))
        plan = wrapped.compile(zoo.build("resnet18"), PARITY_BS)
        with pytest.raises(TypeError, match="cannot serialise"):
            plan_to_dict(plan, LinePool(), LayerBodyPool())


class TestBundleProvenance:
    def test_missing_bundle_raises_file_not_found(self, models, tmp_path):
        path = tmp_path / "e2e.json"
        save_model(models["e2e"], path)
        with pytest.raises(FileNotFoundError):
            load_bundle(path, models["e2e"])

    def test_stale_model_bytes_are_refused(self, models, tmp_path):
        path = tmp_path / "e2e.json"
        save_model(models["e2e"], path)
        save_bundle(build_bundle(models["e2e"], path,
                                 [zoo.build("resnet18")], [PARITY_BS]),
                    path)
        document = json.loads(path.read_text())
        document["fit"]["intercept"] += 1.0     # "retrained" in place
        path.write_text(json.dumps(document))
        with pytest.raises(BundleMismatch, match="stale"):
            load_bundle(path, models["e2e"])

    def test_kind_mismatch_is_refused(self, models, tmp_path):
        path = tmp_path / "model.json"
        save_model(models["e2e"], path)
        save_bundle(build_bundle(models["e2e"], path,
                                 [zoo.build("resnet18")], [PARITY_BS]),
                    path)
        with pytest.raises(BundleMismatch, match="compiled for"):
            load_bundle(path, models["lw"])

    def test_foreign_plan_format_is_refused(self, models, tmp_path):
        path = tmp_path / "e2e.json"
        save_model(models["e2e"], path)
        save_bundle(build_bundle(models["e2e"], path,
                                 [zoo.build("resnet18")], [PARITY_BS]),
                    path)
        bundle_path = bundle_path_for(path)
        document = json.loads(bundle_path.read_text())
        document["plan_format"] = 999
        bundle_path.write_text(json.dumps(document))
        with pytest.raises(BundleMismatch, match="plan format"):
            load_bundle(path, models["e2e"])

    def test_load_plans_degrades_to_empty(self, models, tmp_path):
        path = tmp_path / "e2e.json"
        save_model(models["e2e"], path)
        assert load_plans(path, models["e2e"]) == {}     # no bundle
        bundle_path = bundle_path_for(path)
        bundle_path.parent.mkdir(exist_ok=True)
        bundle_path.write_text("{ not json")              # corrupt bundle
        assert load_plans(path, models["e2e"]) == {}

    def test_bundle_coverage_lists_keys(self, store_dir):
        coverage = bundle_coverage(store_dir / "igkw.json")
        assert ("resnet18", PARITY_BS) in coverage
        assert len(coverage) == len(zoo.model_names())
        assert bundle_coverage(store_dir / "missing.json") == []


class TestCompileStore:
    def test_compiles_and_verifies_every_model(self, models, tmp_path):
        for kind, model in models.items():
            save_model(model, tmp_path / f"{kind}.json")
        report = compile_store(tmp_path,
                               network_names=["resnet18", "mobilenet_v2"],
                               batch_sizes=[1, PARITY_BS], verify=True)
        assert report.ok
        assert len(report.bundles) == 4
        assert all(b.verified for b in report.bundles)
        assert all(b.plans == 4 for b in report.bundles)
        rendered = report.render()
        assert "verified bit-exact" in rendered
        assert rendered.endswith("-> ok")

    def test_model_names_filter(self, models, tmp_path):
        for kind in ("e2e", "lw"):
            save_model(models[kind], tmp_path / f"{kind}.json")
        report = compile_store(tmp_path, network_names=["resnet18"],
                               model_names=["e2e"])
        assert [b.model for b in report.bundles] == ["e2e"]
        assert bundle_path_for(tmp_path / "e2e.json").is_file()
        assert not bundle_path_for(tmp_path / "lw.json").is_file()

    def test_per_model_failures_are_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.json").write_text("{ not json")
        report = compile_store(tmp_path, network_names=["resnet18"])
        assert not report.ok
        assert report.bundles[0].error is not None
        assert "FAILED" in report.render()

    def test_rejects_bad_inputs(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compile_store(tmp_path / "nowhere")
        with pytest.raises(ValueError, match="positive"):
            compile_store(tmp_path, batch_sizes=[0])


class TestColdStartParityZoo:
    """AOT-loaded plans are bit-exact with fresh lowering, all 36 nets."""

    @pytest.mark.parametrize("name", zoo.model_names())
    def test_single_gpu_kinds_bit_exact(self, models, loaded_plans, name):
        network = zoo.build(name)
        for kind in ("e2e", "lw", "kw"):
            revived = loaded_plans[kind][(name, PARITY_BS)]
            fresh = models[kind].compile(network, PARITY_BS)
            assert revived.evaluate() == fresh.evaluate(), (name, kind)

    @pytest.mark.parametrize("name", zoo.model_names())
    def test_igkw_bit_exact(self, models, loaded_plans, name):
        network = zoo.build(name)
        revived = loaded_plans["igkw"][(name, PARITY_BS)]
        fresh = models["igkw"].compile(network, PARITY_BS)
        # an unseen target, a bandwidth override, and a trained GPU
        targets = (gpu("V100"), gpu("V100").with_bandwidth(600.0),
                   gpu("A100"))
        assert revived.evaluate_grid(targets) == \
            fresh.evaluate_grid(targets), name
        assert revived.evaluate(gpu=gpu("V100")) == \
            fresh.evaluate(gpu=gpu("V100")), name
