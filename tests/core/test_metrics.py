"""Tests for error metrics and S-curves."""

import pytest

from repro.core.metrics import (
    SCurve,
    mean_relative_error,
    relative_error,
    s_curve,
)


class TestRelativeError:
    def test_exact_prediction(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_overestimate(self):
        assert relative_error(12.0, 10.0) == pytest.approx(0.2)

    def test_underestimate(self):
        assert relative_error(8.0, 10.0) == pytest.approx(0.2)

    def test_rejects_nonpositive_measured(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_mean(self):
        pairs = [(11, 10), (9, 10)]
        assert mean_relative_error(pairs) == pytest.approx(0.1)

    def test_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_relative_error([])


class TestSCurve:
    def make(self):
        predictions = {"a": 8.0, "b": 10.0, "c": 15.0, "d": 11.0}
        measurements = {"a": 10.0, "b": 10.0, "c": 10.0, "d": 10.0}
        return s_curve(predictions, measurements)

    def test_ratios_sorted(self):
        curve = self.make()
        assert curve.ratios == (0.8, 1.0, 1.1, 1.5)
        assert curve.labels == ("a", "b", "d", "c")

    def test_mean_error(self):
        assert self.make().mean_error == pytest.approx(
            (0.2 + 0.0 + 0.1 + 0.5) / 4)

    def test_percentiles(self):
        curve = self.make()
        assert curve.at_percentile(0) == 0.8
        assert curve.at_percentile(100) == 1.5
        assert curve.at_percentile(50) == 1.1

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            self.make().at_percentile(101)

    def test_fraction_within(self):
        curve = self.make()
        assert curve.fraction_within(0.15) == pytest.approx(0.5)
        assert curve.fraction_within(0.25) == pytest.approx(0.75)

    def test_underestimated_fraction(self):
        assert self.make().underestimated_fraction() == pytest.approx(0.25)

    def test_series_percentiles_ascending(self):
        series = self.make().series()
        percentiles = [p for p, _ in series]
        assert percentiles == sorted(percentiles)
        assert all(0 < p < 100 for p in percentiles)

    def test_render_contains_mean(self):
        assert "mean error" in self.make().render("title")

    def test_disjoint_mappings_rejected(self):
        with pytest.raises(ValueError):
            s_curve({"a": 1.0}, {"b": 1.0})

    def test_partial_overlap_uses_common(self):
        curve = s_curve({"a": 1.0, "b": 2.0}, {"b": 2.0, "c": 3.0})
        assert curve.labels == ("b",)

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            SCurve((), ())

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ValueError):
            SCurve((1.0,), ("a", "b"))
