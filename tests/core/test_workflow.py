"""Tests for the Figure-10 workflow façade."""

import pytest

from repro.core.workflow import (
    SINGLE_GPU_MODELS,
    evaluate_model,
    train_inter_gpu_model,
    train_model,
)
from repro.gpu import gpu


class TestTrainModel:
    def test_model_names_stable(self):
        assert set(SINGLE_GPU_MODELS) == {"e2e", "lw", "kw"}

    def test_case_insensitive_model_name(self, small_split):
        train, _ = small_split
        model = train_model(train, "E2E", gpu="A100")
        assert model.name == "E2E"

    def test_default_trains_at_full_utilisation(self, small_split):
        """The default follows the paper: BS-512-only training data."""
        train, _ = small_split
        kw = train_model(train, "kw", gpu="A100")
        # every mapping-table output bucket comes from BS-512 rows only
        bs512_only = train.filter(gpu="A100", batch_size=512)
        assert set(kw.table.signatures()) == set(
            row.signature for row in bs512_only.kernel_rows) | {
            row.signature for row in bs512_only.layer_rows
            if row.duration_us == 0.0}

    def test_missing_batch_size_rejected(self, small_split):
        train, _ = small_split
        with pytest.raises(ValueError):
            train_model(train, "e2e", gpu="A100", batch_size=7)


class TestEvaluateModel:
    def test_accepts_list_or_mapping(self, small_split, small_roster,
                                     roster_index):
        train, test = small_split
        model = train_model(train, "e2e", gpu="A100")
        from_list = evaluate_model(model, test, small_roster, gpu="A100",
                                   batch_size=512)
        from_mapping = evaluate_model(model, test, roster_index,
                                      gpu="A100", batch_size=512)
        assert from_list.ratios == from_mapping.ratios


class TestTrainInterGpu:
    def test_filters_to_requested_gpus(self, small_split):
        train, _ = small_split
        model = train_inter_gpu_model(
            train, [gpu("A100"), gpu("TITAN RTX")])
        for transfer in model.transfers.values():
            assert set(transfer.per_gpu) <= {"A100", "TITAN RTX"}

    def test_batch_all_mode(self, small_split):
        train, _ = small_split
        model = train_inter_gpu_model(
            train, [gpu("A100"), gpu("TITAN RTX")], batch_size=None)
        assert model.transfers
