"""Tests for kernel classification (observation O5, Figure 8)."""

import pytest

from repro.core.classification import (
    FEATURES,
    classification_report,
    classify_kernel,
    classify_kernels,
)
from repro.dataset.records import KernelRow
from repro.gpu.cudnn import kernel_calls
from repro.gpu.kernels import Driver


def make_row(kernel_name, flops, input_nchw, output_nchw, duration_us):
    return KernelRow(
        network="n", family="f", gpu="A100", batch_size=8,
        mode="inference", layer_name="l", layer_kind="CONV",
        signature="CONV|x", kernel_name=kernel_name, flops=flops,
        input_nchw=input_nchw, output_nchw=output_nchw,
        duration_us=duration_us)


def synthetic_rows(driver_column, slope=2.0, n=20):
    """Rows whose duration is exactly linear in one feature column."""
    rows = []
    for i in range(1, n + 1):
        features = {
            "flops": 1000.0 * i if driver_column == "flops" else 500.0,
            "input_nchw": 100.0 * i if driver_column == "input_nchw"
            else 300.0,
            "output_nchw": 10.0 * i if driver_column == "output_nchw"
            else 70.0,
        }
        duration = slope * features[driver_column] + 5.0
        rows.append(make_row("k", features["flops"],
                             features["input_nchw"],
                             features["output_nchw"], duration))
    return rows


class TestSyntheticClassification:
    @pytest.mark.parametrize("column", FEATURES)
    def test_recovers_planted_driver(self, column):
        entry = classify_kernel("k", synthetic_rows(column))
        assert entry.feature == column
        assert entry.fit.r2 == pytest.approx(1.0)

    def test_labels(self):
        entry = classify_kernel("k", synthetic_rows("flops"))
        assert entry.label == "operation-driven"

    def test_single_row_degenerates_gracefully(self):
        entry = classify_kernel("k", [make_row("k", 1, 2, 3, 4.0)])
        assert entry.feature in FEATURES
        assert entry.fit.predict(123) == pytest.approx(4.0)

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            classify_kernel("k", [])

    def test_r2_by_feature_has_all_columns(self):
        entry = classify_kernel("k", synthetic_rows("flops"))
        assert set(entry.r2_by_feature) == set(FEATURES)


class TestDatasetClassification:
    def test_classifies_every_kernel(self, a100_dataset):
        classified = classify_kernels(a100_dataset)
        assert set(classified) == set(a100_dataset.kernel_names())

    def test_recovers_ground_truth_drivers(self, a100_dataset, small_roster):
        """The R²-based classifier must rediscover the substrate's hidden
        driver assignment — the central claim of observation O5."""
        classified = classify_kernels(a100_dataset)
        truth = {}
        for network in small_roster:
            for info in network.layer_infos(64):
                for call in kernel_calls(info):
                    truth[call.kernel.name] = call.kernel.driver
        column_of = {Driver.INPUT: "input_nchw",
                     Driver.OPERATION: "flops",
                     Driver.OUTPUT: "output_nchw"}
        checked = 0
        agreements = 0
        for name, entry in classified.items():
            if name not in truth or entry.fit.n_samples < 10:
                continue
            checked += 1
            # functional agreement: the true driver predicts (essentially)
            # as well as the winner — ties occur when a kernel's feature
            # columns are proportional within its population, and then any
            # choice is equally predictive
            truth_r2 = entry.r2_by_feature[column_of[truth[name]]]
            if truth_r2 >= entry.fit.r2 - 0.02:
                agreements += 1
        assert checked > 10
        assert agreements / checked > 0.9

    def test_winning_fits_are_strongly_linear(self, a100_dataset):
        """Figure 8: classification amplifies the linear relationship."""
        classified = classify_kernels(a100_dataset)
        strong = [entry for entry in classified.values()
                  if entry.fit.n_samples >= 20]
        assert strong
        good = sum(1 for entry in strong if entry.fit.r2 > 0.9)
        assert good / len(strong) > 0.8

    def test_report_lists_every_kernel(self, a100_dataset):
        classified = classify_kernels(a100_dataset)
        report = classification_report(classified)
        for name in list(classified)[:5]:
            assert name in report
