"""Tests for layer dispatch signatures."""

import pytest

from repro.core.signature import layer_signature, signature_kind, size_bucket
from repro.nn.graph import Network
from repro.nn.layers import (
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.tensor import TensorShape


def info_of(layer, shape):
    net = Network("probe", shape)
    net.add("x", layer)
    return net.layer_infos(shape.batch)[0]


IMG = TensorShape.image(4, 64, 56, 56)


class TestSizeBucket:
    def test_octaves(self):
        assert size_bucket(1) == 0
        assert size_bucket(2) == 1
        assert size_bucket(1024) == 10

    def test_degenerate(self):
        assert size_bucket(0) == 0
        assert size_bucket(0.5) == 0


class TestConvSignatures:
    def test_encodes_geometry(self):
        sig = layer_signature(info_of(Conv2d(64, 128, 3, stride=2,
                                             padding=1, bias=False), IMG))
        assert sig.startswith("CONV|k3x3|s2x2|std|")

    def test_group_classes(self):
        dw = layer_signature(info_of(
            Conv2d(64, 64, 3, padding=1, groups=64), IMG))
        pw = layer_signature(info_of(Conv2d(64, 128, 1), IMG))
        grouped = layer_signature(info_of(
            Conv2d(64, 128, 1, groups=4), IMG))
        assert "|dw|" in dw
        assert "|pw|" in pw
        assert "|grouped|" in grouped

    def test_batch_changes_bucket_not_base(self):
        small = layer_signature(info_of(Conv2d(64, 64, 3, padding=1), IMG))
        big = layer_signature(info_of(Conv2d(64, 64, 3, padding=1),
                                      IMG.with_batch(512)))
        assert small.rsplit("|o", 1)[0] == big.rsplit("|o", 1)[0]
        assert small != big

    def test_reduction_bucket_distinguishes_channels(self):
        shallow = layer_signature(info_of(Conv2d(64, 128, 1), IMG))
        deep = layer_signature(info_of(
            Conv2d(2048, 128, 1), IMG.with_channels(2048)))
        assert shallow != deep


class TestOtherSignatures:
    def test_fc_skinny_flag(self):
        skinny = layer_signature(info_of(Linear(512, 10),
                                         TensorShape.flat(4, 512)))
        wide = layer_signature(info_of(Linear(512, 4096),
                                       TensorShape.flat(64, 512)))
        assert "skinny1" in skinny
        assert "skinny0" in wide

    def test_pool_encodes_geometry(self):
        sig = layer_signature(info_of(MaxPool2d(3, stride=2, padding=1),
                                      IMG))
        assert sig == "MaxPool|k3s2"

    def test_adaptive_pool_encodes_output(self):
        sig = layer_signature(info_of(AdaptiveAvgPool2d(7), IMG))
        assert sig == "AdaptiveAvgPool|7x7"

    def test_elementwise_is_kind_only(self):
        assert layer_signature(info_of(ReLU(), IMG)) == "ReLU"
        assert layer_signature(info_of(BatchNorm2d(64), IMG)) == "BN"


class TestSignatureKind:
    def test_recovers_kind(self):
        sig = layer_signature(info_of(Conv2d(64, 64, 3, padding=1), IMG))
        assert signature_kind(sig) == "CONV"
        assert signature_kind("ReLU") == "ReLU"
