"""Unit tests for the kernel mapping table's learning and fallback."""

import pytest

from repro.core.kernelwise import KernelMappingTable
from repro.dataset.records import KernelRow, LayerRow


def kernel_row(network, layer, signature, kernel, order_key=0):
    return KernelRow(network=network, family="f", gpu="A100",
                     batch_size=64, mode="inference", layer_name=layer,
                     layer_kind=signature.split("|")[0],
                     signature=signature, kernel_name=kernel,
                     flops=1.0, input_nchw=1.0, output_nchw=1.0,
                     duration_us=1.0)


def layer_row(network, layer, signature, duration=1.0):
    return LayerRow(network=network, family="f", gpu="A100",
                    batch_size=64, mode="inference", layer_name=layer,
                    kind=signature.split("|")[0], signature=signature,
                    flops=1.0, input_nchw=1.0, output_nchw=1.0, params=0,
                    duration_us=duration)


class _FakeDataset:
    def __init__(self, kernel_rows, layer_rows=()):
        self.kernel_rows = list(kernel_rows)
        self.layer_rows = list(layer_rows)


class TestLearning:
    def test_sequences_grouped_per_layer_execution(self):
        rows = [
            kernel_row("n1", "conv_0", "CONV|x|r3|o10", "pre"),
            kernel_row("n1", "conv_0", "CONV|x|r3|o10", "main"),
            kernel_row("n1", "relu_0", "ReLU", "elementwise_relu"),
        ]
        table = KernelMappingTable.learn(_FakeDataset(rows))
        assert table.lookup("CONV|x|r3|o10") == ("pre", "main")
        assert table.lookup("ReLU") == ("elementwise_relu",)

    def test_majority_sequence_wins(self):
        rows = []
        for network in ("n1", "n2", "n3"):
            rows.append(kernel_row(network, "conv", "CONV|x|r3|o10",
                                   "kernel_a"))
        rows.append(kernel_row("n4", "conv", "CONV|x|r3|o10", "kernel_b"))
        table = KernelMappingTable.learn(_FakeDataset(rows))
        assert table.lookup("CONV|x|r3|o10") == ("kernel_a",)

    def test_zero_kernel_layers_learned_from_layer_rows(self):
        rows = [kernel_row("n1", "conv", "CONV|x|r3|o10", "main")]
        layers = [layer_row("n1", "flatten_0", "Flatten", duration=0.0)]
        table = KernelMappingTable.learn(_FakeDataset(rows, layers))
        assert table.lookup("Flatten") == ()

    def test_nonzero_layer_rows_do_not_create_empty_entries(self):
        rows = [kernel_row("n1", "conv", "CONV|x|r3|o10", "main")]
        layers = [layer_row("n1", "bn_0", "BN", duration=5.0)]
        table = KernelMappingTable.learn(_FakeDataset(rows, layers))
        assert table.lookup("BN") is None or table.lookup("BN") != ()

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            KernelMappingTable.learn(_FakeDataset([]))


class TestFallbackStages:
    def make(self):
        return KernelMappingTable(
            {
                "CONV|k3|std|r4|o10": ("a",),
                "CONV|k3|std|r4|o20": ("b",),
                "CONV|k3|std|r8|o20": ("c",),
                "ReLU": ("relu",),
            },
            {"CONV": ("a",), "ReLU": ("relu",)})

    def test_stage1_exact(self):
        assert self.make().lookup("CONV|k3|std|r4|o10") == ("a",)

    def test_stage2_nearest_output_bucket(self):
        assert self.make().lookup("CONV|k3|std|r4|o11") == ("a",)
        assert self.make().lookup("CONV|k3|std|r4|o19") == ("b",)

    def test_stage3_nearest_reduction_and_output(self):
        # r6 is unseen with any o; nearest (r, o) wins
        assert self.make().lookup("CONV|k3|std|r7|o20") == ("c",)

    def test_stage4_kind_majority_for_unbucketed_only(self):
        assert self.make().lookup("ReLU") == ("relu",)

    def test_stage5_none_for_alien_bucketed_base(self):
        # a different dispatch base never borrows another branch's kernels
        assert self.make().lookup("CONV|k7|std|r4|o10") is None

    def test_unknown_kind_returns_none(self):
        assert self.make().lookup("Quantum") is None

    def test_len_and_signatures(self):
        table = self.make()
        assert len(table) == 4
        assert "ReLU" in table.signatures()
