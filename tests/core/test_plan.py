"""The compile/evaluate split: bit-exact parity and plan semantics.

The contract is exact float equality, not approximation: a compiled
:class:`~repro.core.plan.PredictionPlan` must replay the direct
prediction path's accumulation, term for term. Parity is asserted for
every zoo network against every model kind (e2e / lw / kw / igkw), with
the direct side computed through the per-layer loops that do not route
through plans.
"""

from __future__ import annotations

import pytest

from repro import zoo
from repro.core import (
    EndToEndModel,
    FlopsPlan,
    InterGPUKernelWiseModel,
    KernelPlan,
    KernelWiseModel,
    LayerSumPlan,
    LayerWiseModel,
    OnlineEndToEndModel,
    OverheadAwareModel,
    RetargetablePlan,
    coverage_report,
    train_inter_gpu_model,
    train_model,
)
from repro.gpu import gpu

#: Parity batch size: small enough to keep 36 networks fast, and not a
#: batch size the training campaign measured.
PARITY_BS = 4


@pytest.fixture(scope="module")
def single_gpu_models(small_dataset):
    return {kind: train_model(small_dataset, kind, gpu="A100",
                              batch_size=64)
            for kind in ("e2e", "lw", "kw")}


@pytest.fixture(scope="module")
def igkw_model(small_dataset):
    return train_inter_gpu_model(
        small_dataset, [gpu("A100"), gpu("TITAN RTX")], batch_size=64)


def _direct(kind, model, network, batch_size, target=None):
    """The reference prediction, computed without compiling a plan."""
    if kind == "e2e":
        return model.predict_flops(network.total_flops(batch_size))
    if kind == "lw":
        return sum(model.predict_layer(info.kind, float(info.flops))
                   for info in network.layer_infos(batch_size))
    if kind == "kw":
        return sum(model.predict_layer(info)
                   for info in network.layer_infos(batch_size))
    predictor = model.for_gpu(target)
    return sum(predictor.predict_layer(info)
               for info in network.layer_infos(batch_size))


class TestZooParity:
    """compile(...).evaluate() == predict_network(...) — exact, all zoo."""

    @pytest.mark.parametrize("name", zoo.model_names())
    def test_single_gpu_kinds_bit_exact(self, single_gpu_models, name):
        network = zoo.build(name)
        for kind, model in single_gpu_models.items():
            plan = model.compile(network, PARITY_BS)
            shim = model.predict_network(network, PARITY_BS)
            reference = _direct(kind, model, network, PARITY_BS)
            assert plan.evaluate() == shim, (name, kind)
            assert plan.evaluate() == reference, (name, kind)

    @pytest.mark.parametrize("name", zoo.model_names())
    def test_igkw_bit_exact(self, igkw_model, name):
        network = zoo.build(name)
        target = gpu("V100")      # never measured by the campaign
        plan = igkw_model.compile(network, PARITY_BS)
        shim = igkw_model.predict_network(network, PARITY_BS, target)
        reference = _direct("igkw", igkw_model, network, PARITY_BS,
                            target)
        assert plan.evaluate(gpu=target) == shim, name
        assert plan.bind(target).evaluate() == reference, name


class TestPlanShapes:
    def test_e2e_compiles_to_flops_plan(self, single_gpu_models):
        network = zoo.build("resnet18")
        plan = single_gpu_models["e2e"].compile(network, PARITY_BS)
        assert isinstance(plan, FlopsPlan)
        assert plan.total_flops == network.total_flops(PARITY_BS)
        assert plan.network_name == "resnet18"
        assert plan.batch_size == PARITY_BS
        assert plan.coverage() is None

    def test_lw_plan_has_one_term_per_layer(self, single_gpu_models):
        network = zoo.build("resnet18")
        plan = single_gpu_models["lw"].compile(network, PARITY_BS)
        assert isinstance(plan, LayerSumPlan)
        assert len(plan.terms) == len(network.layer_infos(PARITY_BS))

    def test_kw_plan_records_layer_stages(self, single_gpu_models):
        network = zoo.build("resnet18")
        plan = single_gpu_models["kw"].compile(network, PARITY_BS)
        assert isinstance(plan, KernelPlan)
        assert len(plan.layers) == len(network.layer_infos(PARITY_BS))
        assert plan.lw_model is single_gpu_models["kw"].lw_fallback

    def test_igkw_compiles_retargetable(self, igkw_model):
        plan = igkw_model.compile(zoo.build("resnet18"), PARITY_BS)
        assert isinstance(plan, RetargetablePlan)
        bound = plan.bind(gpu("V100"))
        assert isinstance(bound, KernelPlan)
        assert bound.model_name.endswith("->V100")

    def test_retargetable_requires_gpu(self, igkw_model):
        plan = igkw_model.compile(zoo.build("resnet18"), PARITY_BS)
        with pytest.raises(TypeError, match="retargetable"):
            plan.evaluate()
        with pytest.raises(TypeError, match="retargetable"):
            plan.coverage()


class TestCoverageFromPlans:
    def test_plan_coverage_matches_coverage_report(self,
                                                   single_gpu_models):
        model = single_gpu_models["kw"]
        network = zoo.build("resnet50")
        plan = model.compile(network, PARITY_BS)
        assert plan.coverage() == coverage_report(model, network,
                                                  PARITY_BS)

    def test_coverage_total_equals_evaluate(self, single_gpu_models):
        model = single_gpu_models["kw"]
        plan = model.compile(zoo.build("resnet50"), PARITY_BS)
        # the audit prices the same terms the evaluation sums
        assert plan.coverage().total_us == plan.evaluate()

    def test_coverage_report_rejects_scalar_models(self,
                                                   single_gpu_models):
        with pytest.raises(TypeError, match="kernel-level"):
            coverage_report(single_gpu_models["e2e"],
                            zoo.build("resnet18"), PARITY_BS)

    def test_coverage_is_cached_on_the_plan(self, single_gpu_models):
        plan = single_gpu_models["kw"].compile(zoo.build("resnet18"),
                                               PARITY_BS)
        assert plan.coverage() is plan.coverage()


class TestWrappedModels:
    def test_overhead_model_bit_exact(self, small_split):
        train, _ = small_split
        a100 = train.for_gpu("A100")
        base = train_model(train, "kw", gpu="A100", batch_size=64)
        wrapped = OverheadAwareModel(base).train(a100)
        network = zoo.build("resnet18")
        plan = wrapped.compile(network, PARITY_BS)
        assert plan.evaluate() == wrapped.predict_network(network,
                                                          PARITY_BS)
        kernel_sum = plan.base_plan.evaluate()
        hidden = max(0.0, wrapped.overhead_fit.predict(plan.launches))
        assert plan.evaluate() == max(0.25 * kernel_sum,
                                      kernel_sum - hidden)

    def test_online_e2e_bit_exact(self, small_dataset):
        online = OnlineEndToEndModel()
        for row in small_dataset.filter(gpu="A100",
                                        batch_size=64).network_rows:
            online.observe(row)
        network = zoo.build("resnet18")
        plan = online.compile(network, PARITY_BS)
        assert plan.evaluate() == online.predict_network(network,
                                                         PARITY_BS)

    def test_online_plan_snapshots_the_stream(self, small_dataset):
        rows = small_dataset.filter(gpu="A100",
                                    batch_size=64).network_rows
        online = OnlineEndToEndModel()
        for row in rows[:3]:
            online.observe(row)
        network = zoo.build("resnet18")
        plan = online.compile(network, PARITY_BS)
        before = plan.evaluate()
        for row in rows[3:]:
            online.observe(row)
        # the compiled plan holds the fit it was lowered against
        assert plan.evaluate() == before
        assert online.predict_network(network, PARITY_BS) != before


class TestUntrainedModels:
    def test_untrained_models_refuse_to_compile(self):
        network = zoo.build("alexnet")
        for model, message in (
                (EndToEndModel(), "EndToEndModel"),
                (LayerWiseModel(), "LayerWiseModel"),
                (KernelWiseModel(), "KernelWiseModel"),
                (InterGPUKernelWiseModel(), "InterGPUKernelWiseModel")):
            with pytest.raises(RuntimeError, match=message):
                model.compile(network, PARITY_BS)

    def test_untrained_overhead_refuses(self, single_gpu_models):
        wrapped = OverheadAwareModel(single_gpu_models["kw"])
        with pytest.raises(RuntimeError, match="OverheadAwareModel"):
            wrapped.compile(zoo.build("alexnet"), PARITY_BS)


class TestPlanReuseAcrossTargets:
    def test_one_compile_many_bandwidths(self, igkw_model):
        network = zoo.build("resnet50")
        base = gpu("TITAN RTX")
        plan = igkw_model.compile(network, PARITY_BS)
        for bandwidth in (400.0, 800.0, 1200.0):
            target = base.with_bandwidth(bandwidth)
            assert plan.evaluate(gpu=target) == \
                igkw_model.for_gpu(target).predict_network(network,
                                                           PARITY_BS)

    def test_bound_plan_carries_nearest_lw(self, igkw_model):
        plan = igkw_model.compile(zoo.build("resnet18"), PARITY_BS)
        target = gpu("V100")
        bound = plan.bind(target)
        assert bound.lw_model is igkw_model._nearest_lw(target)
