"""Tests for the Inter-GPU Kernel-Wise model."""

import pytest

from repro.core import (
    InterGPUKernelWiseModel,
    evaluate_model,
    train_inter_gpu_model,
)
from repro.gpu import gpu


@pytest.fixture(scope="module")
def igkw(request):
    train, _ = request.getfixturevalue("small_split")
    return train_inter_gpu_model(train, [gpu("A100"), gpu("TITAN RTX")])


class TestTraining:
    def test_needs_two_gpus(self, small_split):
        train, _ = small_split
        with pytest.raises(ValueError):
            InterGPUKernelWiseModel().train(train, [gpu("A100")])

    def test_rejects_missing_gpu_data(self, small_split):
        train, _ = small_split
        with pytest.raises(ValueError):
            InterGPUKernelWiseModel().train(
                train, [gpu("A100"), gpu("V100")])

    def test_transfer_per_kernel(self, igkw, small_split):
        # IGKW trains on the full-utilisation batch size by default
        train, _ = small_split
        kernels = set(train.at_batch(512).kernel_names())
        assert set(igkw.transfers) == kernels

    def test_untrained_rejects(self):
        with pytest.raises(RuntimeError):
            InterGPUKernelWiseModel().for_gpu(gpu("V100"))


class TestPrediction:
    def test_predicts_trained_gpus_well(self, igkw, small_split,
                                        roster_index):
        _, test = small_split
        curve = evaluate_model(igkw.for_gpu(gpu("A100")), test,
                               roster_index, gpu="A100", batch_size=512)
        assert curve.mean_error < 0.30

    def test_bandwidth_ordering(self, igkw, small_roster):
        """Predicted times must order by bandwidth for similar GPUs."""
        net = small_roster[0]
        fast = igkw.for_gpu(gpu("A100")).predict_network(net, 512)
        slow = igkw.for_gpu(gpu("GTX 1080 Ti")).predict_network(net, 512)
        assert fast < slow

    def test_hypothetical_gpu_variant(self, igkw, small_roster):
        """Case-study-1 usage: bandwidth knob on a base GPU."""
        base = gpu("TITAN RTX")
        net = small_roster[0]
        narrow = igkw.for_gpu(base.with_bandwidth(300)).predict_network(
            net, 512)
        wide = igkw.for_gpu(base.with_bandwidth(1200)).predict_network(
            net, 512)
        assert wide < narrow

    def test_bandwidth_sensitivity_helper(self, igkw, small_roster):
        points = igkw.bandwidth_sensitivity(small_roster[0], 64,
                                            gpu("TITAN RTX"),
                                            [400, 800, 1200])
        assert [b for b, _ in points] == [400, 800, 1200]
        times = [t for _, t in points]
        assert times[0] > times[2]

    def test_predict_network_convenience(self, igkw, small_roster):
        direct = igkw.predict_network(small_roster[0], 64, gpu("V100"))
        via_predictor = igkw.for_gpu(gpu("V100")).predict_network(
            small_roster[0], 64)
        assert direct == pytest.approx(via_predictor)


class TestFallbacks:
    def test_extreme_low_bandwidth_stays_positive(self, igkw, small_roster):
        """Extrapolating far below the training range must not produce
        negative rates/times (the ratio-scaling fallback)."""
        tiny = gpu("TITAN RTX").with_bandwidth(10)
        predicted = igkw.for_gpu(tiny).predict_network(small_roster[0], 64)
        assert predicted > 0
