"""Tests for the Inter-GPU Kernel-Wise model."""

import numpy as np
import pytest

from repro.core import (
    InterGPUKernelWiseModel,
    evaluate_model,
    train_inter_gpu_model,
)
from repro.gpu import gpu


@pytest.fixture(scope="module")
def igkw(request):
    train, _ = request.getfixturevalue("small_split")
    return train_inter_gpu_model(train, [gpu("A100"), gpu("TITAN RTX")])


class TestTraining:
    def test_needs_two_gpus(self, small_split):
        train, _ = small_split
        with pytest.raises(ValueError):
            InterGPUKernelWiseModel().train(train, [gpu("A100")])

    def test_rejects_missing_gpu_data(self, small_split):
        train, _ = small_split
        with pytest.raises(ValueError):
            InterGPUKernelWiseModel().train(
                train, [gpu("A100"), gpu("V100")])

    def test_transfer_per_kernel(self, igkw, small_split):
        # IGKW trains on the full-utilisation batch size by default
        train, _ = small_split
        kernels = set(train.at_batch(512).kernel_names())
        assert set(igkw.transfers) == kernels

    def test_untrained_rejects(self):
        with pytest.raises(RuntimeError):
            InterGPUKernelWiseModel().for_gpu(gpu("V100"))


class TestPrediction:
    def test_predicts_trained_gpus_well(self, igkw, small_split,
                                        roster_index):
        _, test = small_split
        curve = evaluate_model(igkw.for_gpu(gpu("A100")), test,
                               roster_index, gpu="A100", batch_size=512)
        assert curve.mean_error < 0.30

    def test_bandwidth_ordering(self, igkw, small_roster):
        """Predicted times must order by bandwidth for similar GPUs."""
        net = small_roster[0]
        fast = igkw.for_gpu(gpu("A100")).predict_network(net, 512)
        slow = igkw.for_gpu(gpu("GTX 1080 Ti")).predict_network(net, 512)
        assert fast < slow

    def test_hypothetical_gpu_variant(self, igkw, small_roster):
        """Case-study-1 usage: bandwidth knob on a base GPU."""
        base = gpu("TITAN RTX")
        net = small_roster[0]
        narrow = igkw.for_gpu(base.with_bandwidth(300)).predict_network(
            net, 512)
        wide = igkw.for_gpu(base.with_bandwidth(1200)).predict_network(
            net, 512)
        assert wide < narrow

    def test_bandwidth_sensitivity_helper(self, igkw, small_roster):
        points = igkw.bandwidth_sensitivity(small_roster[0], 64,
                                            gpu("TITAN RTX"),
                                            [400, 800, 1200])
        assert [b for b, _ in points] == [400, 800, 1200]
        times = [t for _, t in points]
        assert times[0] > times[2]

    def test_predict_network_convenience(self, igkw, small_roster):
        direct = igkw.predict_network(small_roster[0], 64, gpu("V100"))
        via_predictor = igkw.for_gpu(gpu("V100")).predict_network(
            small_roster[0], 64)
        assert direct == pytest.approx(via_predictor)


class TestFallbacks:
    def test_extreme_low_bandwidth_stays_positive(self, igkw, small_roster):
        """Extrapolating far below the training range must not produce
        negative rates/times (the ratio-scaling fallback)."""
        tiny = gpu("TITAN RTX").with_bandwidth(10)
        predicted = igkw.for_gpu(tiny).predict_network(small_roster[0], 64)
        assert predicted > 0


class TestDegenerateBandwidths:
    """Regression: zero/negative bandwidths used to fail branch-dependently.

    The scalar path divided to ``ZeroDivisionError`` (or not, depending
    on which synthesis branch the rate fit selected) while the vectorised
    path silently produced ``inf`` columns. Both must now raise the same
    ``ValueError`` up front — and a degenerate point in a vector must
    never contaminate the healthy columns.
    """

    @pytest.fixture()
    def transfer(self, igkw):
        return next(iter(igkw.transfers.values()))

    @pytest.mark.parametrize("bandwidth", [0.0, -1.0, -500.0])
    def test_scalar_rejects_nonpositive_bandwidth(self, transfer,
                                                  bandwidth):
        with pytest.raises(ValueError, match="must be positive"):
            transfer.line_for_bandwidth(bandwidth)

    @pytest.mark.parametrize("bandwidth", [0.0, -1.0])
    def test_vector_raises_the_same_error_as_scalar(self, transfer,
                                                    bandwidth):
        # one degenerate point among healthy ones: no silent inf column
        with pytest.raises(ValueError, match="must be positive"):
            transfer.lines_for_bandwidths(
                np.array([800.0, bandwidth, 1200.0]))

    def test_vector_matches_scalar_on_healthy_points(self, transfer):
        bandwidths = np.array([10.0, 400.0, 800.0, 1555.0])
        slopes, intercepts = transfer.lines_for_bandwidths(bandwidths)
        for i, bandwidth in enumerate(bandwidths):
            line = transfer.line_for_bandwidth(float(bandwidth))
            assert slopes[i] == line.slope, bandwidth
            assert intercepts[i] == line.intercept, bandwidth

    def test_healthy_columns_are_position_independent(self, transfer):
        # a point's synthesised line must not depend on its neighbours
        # in the vector (10 GB/s forces the ratio-scaling branch)
        alone = transfer.lines_for_bandwidths(np.array([800.0]))
        mixed = transfer.lines_for_bandwidths(np.array([10.0, 800.0]))
        assert mixed[0][1] == alone[0][0]
        assert mixed[1][1] == alone[1][0]
