"""Vectorised batch evaluation: bit-exact parity with scalar evaluate.

``evaluate_many`` promises exact float equality with calling
``evaluate`` once per target — the numpy path must replay the scalar
accumulation order, clamp, and elementwise IEEE arithmetic. Parity is
asserted for every zoo network and every model kind, including the
retargetable plan across a bandwidth grid, plus the error and
degenerate-input contracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import zoo
from repro.core import (
    OverheadAwareModel,
    train_inter_gpu_model,
    train_model,
)
from repro.core.intergpu import KernelTransfer
from repro.core.linreg import LinearFit
from repro.gpu import gpu

PARITY_BS = 4

#: A deliberately heterogeneous grid: an unmeasured GPU, the training
#: GPUs, and hypothetical-bandwidth variants (the Fig-15 sweep shape).
def _grid():
    base = gpu("TITAN RTX")
    return [gpu("V100"), gpu("A100"), base] + [
        base.with_bandwidth(b) for b in (200.0, 500.0, 800.0, 1100.0, 1400.0)]


@pytest.fixture(scope="module")
def single_gpu_models(small_dataset):
    return {kind: train_model(small_dataset, kind, gpu="A100",
                              batch_size=64)
            for kind in ("e2e", "lw", "kw")}


@pytest.fixture(scope="module")
def igkw_model(small_dataset):
    return train_inter_gpu_model(
        small_dataset, [gpu("A100"), gpu("TITAN RTX")], batch_size=64)


class TestZooBatchParity:
    """evaluate_many == [evaluate per target] — exact, all zoo networks."""

    @pytest.mark.parametrize("name", zoo.model_names())
    def test_igkw_grid_bit_exact(self, igkw_model, name):
        plan = igkw_model.compile(zoo.build(name), PARITY_BS)
        targets = _grid()
        batch = plan.evaluate_many(targets)
        assert batch == [plan.evaluate(gpu=t) for t in targets], name

    @pytest.mark.parametrize("kind", ["e2e", "lw", "kw"])
    def test_single_gpu_kinds_broadcast(self, single_gpu_models, kind):
        model = single_gpu_models[kind]
        plan = model.compile(zoo.build("resnet50"), PARITY_BS)
        targets = [None, None, gpu("A100")]
        assert plan.evaluate_many(targets) == [plan.evaluate()] * 3

    def test_overhead_plan_broadcast(self, small_split):
        train, _ = small_split
        base = train_model(train, "kw", gpu="A100", batch_size=64)
        wrapped = OverheadAwareModel(base).train(train.for_gpu("A100"))
        plan = wrapped.compile(zoo.build("resnet18"), PARITY_BS)
        assert plan.evaluate_many([None] * 4 ) == [plan.evaluate()] * 4


class TestGridSemantics:
    def test_empty_grid(self, igkw_model, single_gpu_models):
        igkw_plan = igkw_model.compile(zoo.build("alexnet"), PARITY_BS)
        assert igkw_plan.evaluate_many([]) == []
        assert igkw_plan.evaluate_grid([]) == ([], [])
        kw_plan = single_gpu_models["kw"].compile(zoo.build("alexnet"),
                                                  PARITY_BS)
        assert kw_plan.evaluate_many([]) == []

    def test_retargetable_rejects_none_targets(self, igkw_model):
        plan = igkw_model.compile(zoo.build("resnet18"), PARITY_BS)
        with pytest.raises(TypeError, match="retargetable"):
            plan.evaluate_many([gpu("V100"), None])
        with pytest.raises(TypeError, match="retargetable"):
            plan.evaluate_grid([None])

    def test_repeated_targets_are_consistent(self, igkw_model):
        plan = igkw_model.compile(zoo.build("resnet18"), PARITY_BS)
        target = gpu("V100")
        times = plan.evaluate_many([target] * 5)
        assert len(set(times)) == 1
        assert times[0] == plan.evaluate(gpu=target)

    def test_lowering_is_cached(self, igkw_model):
        plan = igkw_model.compile(zoo.build("resnet18"), PARITY_BS)
        plan.evaluate_many([gpu("V100")])
        assert plan._lowering() is plan._lowering()


class TestEvaluateGrid:
    @pytest.mark.parametrize("name", ["resnet50", "mobilenet_v2",
                                      "shufflenet_v1"])
    def test_times_and_shares_match_bound_plans(self, igkw_model, name):
        plan = igkw_model.compile(zoo.build(name), PARITY_BS)
        targets = _grid()
        times, shares = plan.evaluate_grid(targets)
        assert times == plan.evaluate_many(targets)
        for target, share in zip(targets, shares):
            assert share == plan.bind(target).fallback_time_share(), name

    def test_shares_zero_when_fully_mapped(self, igkw_model):
        plan = igkw_model.compile(zoo.build("resnet50"), PARITY_BS)
        _, shares = plan.evaluate_grid([gpu("V100")])
        bound_share = plan.bind(gpu("V100")).fallback_time_share()
        assert shares == [bound_share]


class TestFallbackErrorParity:
    def test_missing_lw_raises_like_scalar(self, igkw_model):
        plan = igkw_model.compile(zoo.build("resnet18"), PARITY_BS)
        fallback_plan = type(plan)(
            plan.model_name, plan.network_name, plan.batch_size,
            # force every layer onto the fallback path, with no LW
            [type(layer)(layer.layer_name, layer.kind, layer.signature,
                         "layer-wise-fallback", None, layer.flops)
             for layer in plan.layers],
            plan._transfers, plan._metric, {}, plan._train_gpus)
        with pytest.raises(KeyError, match="no layer-wise fallback"):
            fallback_plan.evaluate(gpu=gpu("V100"))
        with pytest.raises(KeyError, match="no layer-wise fallback"):
            fallback_plan.evaluate_many([gpu("V100")])


class TestKernelTransferVectorised:
    def test_matches_scalar_lines(self, igkw_model):
        bandwidths = np.asarray([200.0, 700.0, 1555.0, 2039.0])
        for transfer in igkw_model.transfers.values():
            slopes, intercepts = transfer.lines_for_bandwidths(bandwidths)
            for i, bandwidth in enumerate(bandwidths):
                line = transfer.line_for_bandwidth(float(bandwidth))
                assert slopes[i] == line.slope
                assert intercepts[i] == line.intercept

    def test_ratio_scaling_branch(self):
        # a rate fit that goes non-positive at low bandwidth exercises
        # the nearest-observed ratio-scaling fallback per point
        transfer = KernelTransfer(
            "k", "flops",
            rate_fit=LinearFit(0.01, -5.0, 0.0, 2),
            intercept_fit=LinearFit(0.0, 1.0, 0.0, 2),
            per_gpu={"A": LinearFit(2.0, 3.0, 0.0, 4),
                     "B": LinearFit(1.0, 1.0, 0.0, 4)},
            gpu_bandwidths={"A": 600.0, "B": 1500.0})
        bandwidths = np.asarray([100.0, 400.0, 900.0, 2000.0])
        assert (transfer.rate_fit.predict(100.0) <= 0.0
                and transfer.rate_fit.predict(2000.0) > 0.0)
        slopes, intercepts = transfer.lines_for_bandwidths(bandwidths)
        for i, bandwidth in enumerate(bandwidths):
            line = transfer.line_for_bandwidth(float(bandwidth))
            assert slopes[i] == line.slope, bandwidth
            assert intercepts[i] == line.intercept, bandwidth
