"""Tests for online (streaming) model training."""

import pytest

from repro.core import evaluate_model, train_model
from repro.core.linreg import fit_line
from repro.core.online import (
    OnlineEndToEndModel,
    OnlineKernelWiseModel,
    OnlineLinearFit,
)


class TestOnlineLinearFit:
    def test_matches_batch_fit_exactly(self):
        xs = [1.0, 2.5, 4.0, 8.0, 16.0]
        ys = [3.0, 6.2, 9.1, 17.5, 33.0]
        online = OnlineLinearFit()
        for x, y in zip(xs, ys):
            online.observe(x, y)
        batch = fit_line(xs, ys)
        streamed = online.fit()
        assert streamed.slope == pytest.approx(batch.slope)
        assert streamed.intercept == pytest.approx(batch.intercept)
        assert streamed.r2 == pytest.approx(batch.r2, abs=1e-9)
        assert streamed.n_samples == batch.n_samples

    def test_merge_equals_single_stream(self):
        a, b, combined = (OnlineLinearFit(), OnlineLinearFit(),
                          OnlineLinearFit())
        points = [(float(i), 2.0 * i + 1.0 + (i % 3)) for i in range(20)]
        for i, (x, y) in enumerate(points):
            (a if i < 10 else b).observe(x, y)
            combined.observe(x, y)
        a.merge(b)
        assert a.fit().slope == pytest.approx(combined.fit().slope)
        assert a.fit().intercept == pytest.approx(combined.fit().intercept)

    def test_single_point_degenerates(self):
        acc = OnlineLinearFit()
        acc.observe(3.0, 7.0)
        fit = acc.fit()
        assert fit.slope == 0.0
        assert fit.intercept == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OnlineLinearFit().fit()

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            OnlineLinearFit().observe(1.0, 1.0, weight=0.0)

    def test_constant_y_r2_one(self):
        acc = OnlineLinearFit()
        for x in (1.0, 2.0, 3.0):
            acc.observe(x, 5.0)
        assert acc.fit().r2 == pytest.approx(1.0)


class TestOnlineEndToEnd:
    def test_streamed_model_matches_batch(self, small_split, roster_index):
        train, test = small_split
        online = OnlineEndToEndModel()
        for row in train.for_gpu("A100").at_batch(512).network_rows:
            online.observe(row)
        batch = train_model(train, "e2e", gpu="A100")
        for name in list(roster_index)[:4]:
            net = roster_index[name]
            assert online.predict_network(net, 512) == pytest.approx(
                batch.predict_network(net, 512), rel=1e-6)

    def test_observation_count(self, small_split):
        train, _ = small_split
        online = OnlineEndToEndModel()
        rows = train.for_gpu("A100").at_batch(512).network_rows
        for row in rows:
            online.observe(row)
        assert online.n_observations == len(rows)


class TestOnlineKernelWise:
    def test_streamed_predictor_is_accurate(self, small_split,
                                            roster_index):
        train, test = small_split
        online = OnlineKernelWiseModel()
        online.observe_dataset(train.for_gpu("A100"))
        predictor = online.finalize()
        curve = evaluate_model(predictor, test, roster_index, gpu="A100",
                               batch_size=512)
        assert curve.mean_error < 0.12

    def test_incremental_refinement(self, small_split, roster_index):
        """Finalising mid-stream works; more data can only help coverage."""
        train, test = small_split
        a100 = train.for_gpu("A100")
        online = OnlineKernelWiseModel()
        half = len(a100.kernel_rows) // 2
        for row in a100.kernel_rows[:half]:
            online.observe_kernel(row)
        early = online.finalize()
        assert early.lines                       # usable mid-stream
        for row in a100.kernel_rows[half:]:
            online.observe_kernel(row)
        for row in a100.layer_rows:
            online.observe_layer(row)
        late = online.finalize()
        assert len(late.lines) >= len(early.lines)

    def test_mode_mismatch_rejected(self, small_split):
        train, _ = small_split
        online = OnlineKernelWiseModel(mode="training")
        with pytest.raises(ValueError):
            online.observe_kernel(train.kernel_rows[0])

    def test_finalize_without_data_rejected(self):
        with pytest.raises(ValueError):
            OnlineKernelWiseModel().finalize()

    def test_matches_unclustered_batch_lines(self, small_split):
        """Per-kernel streamed fits equal batch per-kernel fits."""
        train, _ = small_split
        a100 = train.for_gpu("A100")
        online = OnlineKernelWiseModel()
        online.observe_dataset(a100)
        predictor = online.finalize()
        from repro.core.classification import classify_kernels
        batch = classify_kernels(a100)
        checked = 0
        for name, (feature, fit) in predictor.lines.items():
            entry = batch[name]
            batch_fit = entry.fits_by_feature[feature]
            if batch_fit.n_samples >= 5:
                assert fit.slope == pytest.approx(batch_fit.slope,
                                                  rel=1e-6, abs=1e-12)
                checked += 1
        assert checked > 10
