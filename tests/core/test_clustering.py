"""Tests for kernel clustering (182 kernels -> ~83 models, Section 5.4)."""

import pytest

from repro.core.classification import ClassifiedKernel, classify_kernels
from repro.core.clustering import cluster_index, cluster_kernels
from repro.core.linreg import LinearFit


def entry(name, feature, slope, intercept=0.0):
    fit = LinearFit(slope, intercept, 0.99, 50)
    return ClassifiedKernel(name, feature, fit, {feature: fit})


def rows_for(names, slopes):
    """Synthetic measurement rows matching each kernel's line."""
    from repro.dataset.records import KernelRow
    rows = {}
    for name, slope in zip(names, slopes):
        rows[name] = [
            KernelRow(network="n", family="f", gpu="g", batch_size=1,
                      mode="inference", layer_name="l", layer_kind="CONV",
                      signature="s", kernel_name=name, flops=float(x),
                      input_nchw=float(x), output_nchw=float(x),
                      duration_us=slope * x)
            for x in (10, 20, 30)
        ]
    return rows


class TestSyntheticClustering:
    def test_similar_slopes_merge(self):
        classified = {
            "a": entry("a", "flops", 1.00),
            "b": entry("b", "flops", 1.05),
            "c": entry("c", "flops", 5.00),
        }
        clusters = cluster_kernels(classified,
                                   rows_for(["a", "b", "c"], [1.0, 1.05, 5.0]),
                                   slope_tolerance=0.10)
        assert len(clusters) == 2
        sizes = sorted(len(c.kernel_names) for c in clusters)
        assert sizes == [1, 2]

    def test_different_features_never_merge(self):
        classified = {
            "a": entry("a", "flops", 1.0),
            "b": entry("b", "input_nchw", 1.0),
        }
        clusters = cluster_kernels(classified,
                                   rows_for(["a", "b"], [1.0, 1.0]),
                                   slope_tolerance=1.0)
        assert len(clusters) == 2

    def test_zero_tolerance_keeps_kernels_separate(self):
        classified = {
            "a": entry("a", "flops", 1.0),
            "b": entry("b", "flops", 1.2),
        }
        clusters = cluster_kernels(classified,
                                   rows_for(["a", "b"], [1.0, 1.2]),
                                   slope_tolerance=0.0)
        assert len(clusters) == 2

    def test_anchoring_prevents_tolerance_drift(self):
        """A chain of pairwise-similar slopes must not all merge."""
        names = ["k0", "k1", "k2", "k3", "k4"]
        slopes = [1.0, 1.09, 1.19, 1.30, 1.42]   # each +9% of previous
        classified = {n: entry(n, "flops", s)
                      for n, s in zip(names, slopes)}
        clusters = cluster_kernels(classified, rows_for(names, slopes),
                                   slope_tolerance=0.10)
        assert len(clusters) >= 2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            cluster_kernels({}, {}, slope_tolerance=-0.1)

    def test_cluster_refit_pools_measurements(self):
        classified = {
            "a": entry("a", "flops", 1.0),
            "b": entry("b", "flops", 1.0),
        }
        clusters = cluster_kernels(classified,
                                   rows_for(["a", "b"], [1.0, 1.0]),
                                   slope_tolerance=0.1)
        (cluster,) = clusters
        assert cluster.fit.n_samples == 6
        assert cluster.predict(100) == pytest.approx(100.0, rel=0.01)


class TestClusterIndex:
    def test_index_covers_all_kernels(self):
        classified = {
            "a": entry("a", "flops", 1.0),
            "b": entry("b", "flops", 5.0),
        }
        clusters = cluster_kernels(classified,
                                   rows_for(["a", "b"], [1.0, 5.0]))
        index = cluster_index(clusters)
        assert set(index) == {"a", "b"}


class TestDatasetClustering:
    def test_clustering_reduces_model_count(self, a100_dataset):
        classified = classify_kernels(a100_dataset)
        clusters = cluster_kernels(classified,
                                   a100_dataset.kernels_by_name(),
                                   slope_tolerance=0.4)
        assert len(clusters) < len(classified)
        index = cluster_index(clusters)
        assert set(index) == set(classified)
