"""Tests for the E2E, LW, and KW performance models."""

import pytest

from repro.core import (
    EndToEndModel,
    KernelWiseModel,
    LayerWiseModel,
    evaluate_model,
    train_model,
)
from repro.dataset import PerformanceDataset


@pytest.fixture(scope="module")
def trained(small_split_module):
    train, _ = small_split_module
    return {
        name: train_model(train, name, gpu="A100")
        for name in ("e2e", "lw", "kw")
    }


@pytest.fixture(scope="module")
def small_split_module(request):
    return request.getfixturevalue("small_split")


class TestEndToEnd:
    def test_untrained_rejects_prediction(self, small_roster):
        with pytest.raises(RuntimeError):
            EndToEndModel().predict_network(small_roster[0], 8)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            EndToEndModel().train(PerformanceDataset())

    def test_prediction_positive_for_real_networks(self, trained,
                                                   small_roster):
        for net in small_roster:
            assert trained["e2e"].predict_network(net, 512) > 0

    def test_prediction_monotone_in_flops(self, trained):
        model = trained["e2e"]
        assert model.predict_flops(2e12) > model.predict_flops(1e11)

    def test_batch_scales_prediction(self, trained, small_roster):
        model = trained["e2e"]
        net = small_roster[0]
        # FLOPs are linear in batch, so predictions grow with batch
        assert (model.predict_network(net, 512)
                > model.predict_network(net, 64))


class TestLayerWise:
    def test_has_fit_per_seen_kind(self, trained, small_split_module):
        train, _ = small_split_module
        model = trained["lw"]
        assert set(model.kinds()) == set(train.for_gpu("A100")
                                         .layers_by_kind())

    def test_unseen_kind_uses_fallback(self, trained):
        model = trained["lw"]
        value = model.predict_layer("SomethingNew", 1e9)
        assert value == model.fallback.predict(1e9)

    def test_network_prediction_is_sum_of_layers(self, trained,
                                                 small_roster):
        model = trained["lw"]
        net = small_roster[0]
        total = sum(model.predict_layer(i.kind, float(i.flops))
                    for i in net.layer_infos(512))
        assert model.predict_network(net, 512) == pytest.approx(total)

    def test_untrained_rejects(self):
        with pytest.raises(RuntimeError):
            LayerWiseModel().predict_layer("CONV", 1e9)


class TestKernelWise:
    def test_counts_exposed(self, trained):
        model = trained["kw"]
        assert model.n_kernels > 10
        assert 0 < model.n_models <= model.n_kernels

    def test_prediction_positive(self, trained, small_roster):
        for net in small_roster:
            assert trained["kw"].predict_network(net, 512) > 0

    def test_multi_gpu_training_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            KernelWiseModel().train(small_dataset)

    def test_untrained_rejects(self, small_roster):
        with pytest.raises(RuntimeError):
            KernelWiseModel().predict_network(small_roster[0], 8)

    def test_kernel_report_lists_every_kernel(self, trained):
        model = trained["kw"]
        report = model.kernel_report()
        for kernel_name in list(model.classified)[:10]:
            assert kernel_name in report
        assert f"{model.n_models} regression models" in report

    def test_kernel_report_requires_training(self):
        with pytest.raises(RuntimeError):
            KernelWiseModel().kernel_report()

    def test_generalises_to_unseen_similar_network(self, trained):
        """A ResNet depth variant absent from training predicts sanely."""
        from repro.gpu import SimulatedGPU, gpu
        from repro.zoo import resnet
        unseen = resnet([3, 4, 8, 3], name="resnet_unseen56")
        predicted = trained["kw"].predict_network(unseen, 64)
        measured = SimulatedGPU(gpu("A100")).run_network(unseen, 64).e2e_us
        assert predicted / measured == pytest.approx(1.0, abs=0.35)


class TestAccuracyLadder:
    def test_kw_beats_lw_beats_nothing(self, trained, small_split_module,
                                       roster_index):
        """The paper's central result: model error drops with granularity.

        The tiny 8-network fixture is noisy, so only the robust claim is
        asserted: KW is the most accurate of the three.
        """
        _, test = small_split_module
        errors = {
            name: evaluate_model(model, test, roster_index, gpu="A100",
                                 batch_size=512).mean_error
            for name, model in trained.items()
        }
        assert errors["kw"] < errors["lw"]
        assert errors["kw"] < errors["e2e"]
        assert errors["kw"] < 0.15


class TestWorkflow:
    def test_unknown_model_rejected(self, small_split_module):
        train, _ = small_split_module
        with pytest.raises(KeyError):
            train_model(train, "magic", gpu="A100")

    def test_unknown_gpu_rejected(self, small_split_module):
        train, _ = small_split_module
        with pytest.raises(ValueError):
            train_model(train, "e2e", gpu="H100")

    def test_train_on_all_batches(self, small_split_module):
        train, _ = small_split_module
        model = train_model(train, "kw", gpu="A100", batch_size=None)
        assert model.n_kernels > 0
