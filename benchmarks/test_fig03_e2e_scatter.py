"""Figure 3: end-to-end time vs FLOPs for every network (BS >= 4).

Paper: "The execution times of DNN networks are generally linearly
correlated to FLOPs" with a band "constantly about 10 times wide".
"""

from _shared import emit, once

from repro.reporting import render_scatter, render_table
from repro.studies.observations import e2e_linearity, e2e_scatter


def test_fig03_e2e_vs_flops(benchmark, standard_dataset):
    points = once(benchmark,
                  lambda: e2e_scatter(standard_dataset, "A100", min_batch=4))
    fit = e2e_linearity(standard_dataset, "A100")

    # band width: spread of time-per-GFLOP across the cloud
    efficiencies = sorted(ms / gflops for gflops, ms, _ in points)
    band = efficiencies[int(0.95 * len(efficiencies))] / \
        efficiencies[int(0.05 * len(efficiencies))]

    plot = render_scatter(
        f"Figure 3: {len(points)} runs on A100, BS >= 4 | "
        f"linear trend R2={fit.r2:.3f} | "
        f"5th-95th pct band ~{band:.1f}x wide (paper: ~10x)",
        {"networks": [(g, t) for g, t, _ in points]},
        "GFLOPs", "exec time (ms)", log_x=True, log_y=True)
    sample = points[:: max(1, len(points) // 25)]
    table = render_table(
        ["GFLOPs", "Exec time (ms)", "network"],
        [(f"{g:.1f}", f"{t:.2f}", n) for g, t, n in sample],
        title="sampled points:")
    emit("fig03_e2e_scatter", plot + "\n\n" + table)

    assert fit.r2 > 0.6, "O1: the linear trend must hold"
    assert 4 < band < 30, "the efficiency band is roughly a decade wide"
