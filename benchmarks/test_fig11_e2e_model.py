"""Figure 11: the End-to-End model's S-curve (paper: 35% average error)."""

from _shared import emit, once

from repro.core import evaluate_model, train_model
from repro.studies import context


def test_fig11_e2e_model(benchmark, split, index):
    train, test = split
    model = once(benchmark, lambda: train_model(train, "e2e", gpu="A100"))
    curve = evaluate_model(model, test, index, gpu="A100", batch_size=512)

    text = curve.render(
        f"Figure 11: E2E model on A100, {len(curve.ratios)} test networks "
        f"(paper: mean error 0.35)") + f"\nfit: {model.fit}"
    emit("fig11_e2e_model", text)

    # the paper's 35% with the same failure mode: outliers a few x off
    assert 0.20 < curve.mean_error < 0.60
    assert curve.at_percentile(0) < 0.7, "some networks are overestimated"
    assert curve.at_percentile(100) > 1.4, "and some underestimated"


def test_fig11_e2e_prediction_speed(benchmark, split, index):
    """One E2E prediction is a single multiply-add over total FLOPs."""
    model = context.trained("e2e", "A100")
    net = index["resnet50"]
    benchmark(lambda: model.predict_network(net, 512))
