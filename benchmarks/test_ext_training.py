"""Extension benchmark: KW prediction for training workloads.

The paper's future work: "extending our models for more diverse workloads
(e.g., training)". The same kernel-level machinery — mapping table,
classification, clustered lines — applies unchanged once the dataset
records forward+backward steps; this benchmark measures how well.
"""

from _shared import emit, once

from repro.core import evaluate_model, networks_by_name, train_model
from repro.dataset import build_dataset, train_test_split
from repro.gpu import gpu
from repro.reporting import render_table
from repro.zoo import imagenet_roster


def test_ext_training_workloads(benchmark):
    networks = imagenet_roster("medium")

    def run():
        data = build_dataset(networks, [gpu("A100")],
                             batch_sizes=[64, 512], training=True)
        train, test = train_test_split(data)
        model = train_model(train, "kw", gpu="A100")
        curve = evaluate_model(model, test, networks_by_name(networks),
                               gpu="A100", batch_size=512)
        return model, curve, data

    model, curve, data = once(benchmark, run)

    text = curve.render(
        f"Extension: KW model on training steps (fwd+bwd), A100, "
        f"{len(curve.ratios)} test networks")
    text += (f"\nmode: {model.mode}; distinct kernels incl. backward: "
             f"{len(data.kernel_names())}")
    emit("ext_training", text)

    assert model.mode == "training"
    assert curve.mean_error < 0.12


def test_ext_training_vs_inference_ratio(benchmark):
    """Training-step cost relative to inference across families."""
    from repro.gpu import SimulatedGPU
    from repro.zoo import densenet121, mobilenet_v2, resnet50, vgg16
    device = SimulatedGPU(gpu("A100"))

    def measure():
        rows = []
        for net in (resnet50(), vgg16(), densenet121(), mobilenet_v2()):
            inference = device.run_network(net, 64).e2e_us
            training = device.run_network(net, 64, training=True).e2e_us
            rows.append((net.name, f"{inference / 1e3:.1f}",
                         f"{training / 1e3:.1f}",
                         f"{training / inference:.2f}x"))
        return rows

    rows = once(benchmark, measure)
    emit("ext_training_ratio", render_table(
        ["network", "inference (ms)", "training step (ms)", "ratio"],
        rows, title="Training-step vs inference cost at BS 64 on A100"))
    for _, _, _, ratio in rows:
        assert 1.8 < float(ratio[:-1]) < 4.5
