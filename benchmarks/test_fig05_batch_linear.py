"""Figure 5: execution time is linear in batch size (slopes differ).

Paper sweeps BS 2..82 for ResNet-50, MobileNetV2, and VGG-16.
"""

from _shared import emit, once

from repro.core.linreg import fit_line
from repro.gpu import SimulatedGPU, gpu
from repro.reporting import render_table
from repro.studies.observations import batch_size_series
from repro.zoo import mobilenet_v2, resnet50, vgg16

BATCH_SIZES = [2, 10, 18, 26, 34, 42, 50, 58, 66, 74, 82]


def test_fig05_time_linear_in_batch(benchmark):
    device = SimulatedGPU(gpu("A100"))
    networks = [resnet50(), mobilenet_v2(), vgg16()]
    series = once(benchmark,
                  lambda: batch_size_series(device, networks, BATCH_SIZES))

    rows = []
    fits = {}
    for name, points in series.items():
        fit = fit_line([b for b, _ in points], [t for _, t in points])
        fits[name] = fit
        times = " ".join(f"{t:.1f}" for _, t in points)
        rows.append((name, f"{fit.slope:.4f}", f"{fit.r2:.4f}", times))
    text = render_table(
        ["network", "ms per image", "R2", f"ms at BS {BATCH_SIZES}"],
        rows,
        title="Figure 5: exec time (ms) vs batch size on A100 — linear, "
              "with per-network slopes (O3)")
    emit("fig05_batch_linear", text)

    for name, fit in fits.items():
        assert fit.r2 > 0.98, f"{name}: time must be linear in batch size"
    # slopes differ between networks (vgg steepest: most work per image)
    assert fits["vgg16"].slope > fits["resnet50"].slope \
        > fits["mobilenet_v2"].slope
