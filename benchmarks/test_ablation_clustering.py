"""Ablation: kernel clustering granularity.

The paper merges 182 kernels into 83 regression models. This sweep shows
the trade-off: per-kernel models (tolerance 0) maximise accuracy but cost
one model per kernel; aggressive merging cuts the model count with a
graceful accuracy loss, until over-merging hurts.
"""

from _shared import emit, once

from repro.core import evaluate_model
from repro.core.kernelwise import KernelWiseModel
from repro.reporting import render_table

TOLERANCES = (0.0, 0.2, 0.4, 0.8, 2.0)


def test_ablation_clustering_tolerance(benchmark, split, index):
    train, test = split
    a100 = train.for_gpu("A100").filter(batch_size=512)

    def sweep():
        rows = []
        for tolerance in TOLERANCES:
            model = KernelWiseModel(slope_tolerance=tolerance).train(a100)
            curve = evaluate_model(model, test, index, gpu="A100",
                                   batch_size=512)
            rows.append((tolerance, model.n_kernels, model.n_models,
                         curve.mean_error))
        return rows

    rows = once(benchmark, sweep)
    text = render_table(
        ["slope tolerance", "kernels", "models", "mean error"],
        [(f"{t:.1f}", k, m, f"{e:.3f}") for t, k, m, e in rows],
        title="Ablation: clustering tolerance (paper: 182 kernels -> 83 "
              "models with negligible accuracy loss)")
    emit("ablation_clustering", text)

    # model count decreases monotonically with tolerance
    models = [m for _, _, m, _ in rows]
    assert models == sorted(models, reverse=True)
    # moderate clustering (the default 0.4) costs little accuracy
    per_kernel_error = rows[0][3]
    # exact match is safe: 0.4 is an enumerated grid value, not computed
    default_error = next(
        e for t, _, _, e in rows if t == 0.4)  # repro: noqa[FP001]
    assert default_error < per_kernel_error + 0.05
    # extreme merging degrades accuracy
    assert rows[-1][3] >= default_error - 0.01
