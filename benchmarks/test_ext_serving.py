"""Extension benchmark: model-serving latency/throughput curves.

The paper's related work highlights Clockwork-style predictable serving
as a consumer of execution-time predictors. This study drives a dynamic-
batching serving simulator entirely from KW predictions: offered load
sweeps produce the textbook latency hockey stick and show batching
absorbing load.
"""

from _shared import emit, once

from repro.reporting import render_table
from repro.sim.serving import latency_throughput_curve
from repro.studies import context
from repro.zoo import resnet50

RATES_RPS = (100, 500, 1000, 2000, 4000)


def test_ext_serving_curve(benchmark):
    predictor = context.trained_all_batches("kw", "A100")

    curve = once(benchmark, lambda: latency_throughput_curve(
        predictor, resnet50(), RATES_RPS, n_requests=300, max_batch=32,
        batch_timeout_us=2000.0))

    rows = []
    for rate, result in curve:
        rows.append((rate,
                     f"{result.throughput_rps:.0f}",
                     f"{result.mean_batch_size:.1f}",
                     f"{result.mean_latency_us / 1e3:.1f}",
                     f"{result.latency_percentile_us(99) / 1e3:.1f}"))
    text = render_table(
        ["offered (req/s)", "served (req/s)", "mean batch",
         "mean latency (ms)", "p99 latency (ms)"],
        rows,
        title="Extension: ResNet-50 serving on A100 — dynamic batching "
              "driven entirely by KW predictions")
    emit("ext_serving", text)

    results = [result for _, result in curve]
    # batching absorbs load: achieved batch size grows with offered rate
    batches = [r.mean_batch_size for r in results]
    assert batches[-1] > batches[0]
    # and the latency curve is the textbook hockey stick
    latencies = [r.mean_latency_us for r in results]
    assert latencies[-1] > latencies[0]
    # light load is served at its offered rate
    assert results[0].throughput_rps == \
        __import__("pytest").approx(RATES_RPS[0], rel=0.25)
