"""Ablation: training batch-size coverage.

The paper trains at BS 512 only, leaning on O3 (linearity in batch size)
for cross-batch generalisation. This ablation quantifies what that buys
and costs: full-utilisation-only training matches multi-batch training at
BS 512 but extrapolates worse to small batches, where kernel-line
intercepts are only identified by small-size data.
"""

from _shared import emit, once

from repro.core import evaluate_model, train_model
from repro.reporting import render_table


def test_ablation_training_batch_sizes(benchmark, split, index):
    train, test = split

    def train_both():
        return {
            "BS 512 only (paper protocol)":
                train_model(train, "kw", gpu="A100", batch_size=512),
            "all batch sizes (8, 64, 512)":
                train_model(train, "kw", gpu="A100", batch_size=None),
        }

    models = once(benchmark, train_both)
    rows = []
    errors = {}
    for label, model in models.items():
        for batch in (8, 64, 512):
            curve = evaluate_model(model, test, index, gpu="A100",
                                   batch_size=batch)
            errors[(label, batch)] = curve.mean_error
            rows.append((label, batch, f"{curve.mean_error:.3f}"))
    text = render_table(
        ["training data", "eval batch size", "mean error"], rows,
        title="Ablation: training batch coverage for the KW model on A100")
    emit("ablation_training_batch", text)

    single = "BS 512 only (paper protocol)"
    multi = "all batch sizes (8, 64, 512)"
    # at full utilisation, the single-batch protocol is fine (O3)...
    assert errors[(single, 512)] < 0.10
    # ...but multi-batch training generalises better to small batches
    assert errors[(multi, 8)] <= errors[(single, 8)]
