"""Extension: compiled PredictionPlans amortise the graph walk.

The compile/evaluate split exists so that structure-dependent work
(walking the layer graph, resolving kernel sequences and regression
references) happens once per workload, not once per prediction. This
benchmark measures the payoff on the paper's own 13-point Figure-15/16
bandwidth sweep: per-point ``for_gpu(...).predict_network(...)`` versus
one ``compile`` plus 13 cheap ``evaluate(gpu=...)`` calls, and the same
effect through the service's plan cache.
"""

from __future__ import annotations

import time

from _shared import emit, once

from repro import core
from repro.gpu import IGKW_TRAIN_GPUS, gpu
from repro.service import ModelRegistry, PredictionCache, PredictionService
from repro.studies import context
from repro.studies.bandwidth_sweep import DEFAULT_BANDWIDTHS
from repro.zoo import resnet50

BATCH_SIZE = 64


def _best_of(fn, rounds=5):
    """Best-of-N wall time for ``fn``: (seconds, last return value)."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_plan_reuse_speeds_up_bandwidth_sweep(benchmark):
    model = context.trained_igkw(IGKW_TRAIN_GPUS)
    network = resnet50()
    base = gpu("TITAN RTX")

    def direct():
        return [model.for_gpu(base.with_bandwidth(b))
                .predict_network(network, BATCH_SIZE)
                for b in DEFAULT_BANDWIDTHS]

    def planned():
        plan = model.compile(network, BATCH_SIZE)
        return [plan.evaluate(gpu=base.with_bandwidth(b))
                for b in DEFAULT_BANDWIDTHS]

    direct_s, direct_times = _best_of(direct)
    planned_s, planned_times = once(benchmark, lambda: _best_of(planned))
    speedup = direct_s / planned_s

    text = (f"13-point bandwidth sweep, resnet50 @ bs{BATCH_SIZE} on "
            f"TITAN RTX variants (best of 5):\n"
            f"  per-point predict_network: {direct_s * 1e3:8.2f} ms\n"
            f"  compile once + evaluate:   {planned_s * 1e3:8.2f} ms\n"
            f"  speedup:                   {speedup:8.1f}x")
    emit("ext_plan_cache", text)

    # bit-exact: the plan replays the direct path's arithmetic
    assert planned_times == direct_times
    assert speedup >= 5.0


def test_service_plan_cache_amortises_requests(tmp_path):
    model = context.trained_igkw(IGKW_TRAIN_GPUS)
    core.save_model(model, tmp_path / "igkw.json")
    payloads = [{"model": "igkw", "network": "resnet50",
                 "batch_size": BATCH_SIZE, "gpu": "TITAN RTX",
                 "bandwidth": float(b)} for b in DEFAULT_BANDWIDTHS]

    def serve_all():
        service = PredictionService(ModelRegistry(tmp_path),
                                    plan_cache=PredictionCache(256))
        for payload in payloads:
            service.predict(payload)
        return service

    # warm once for parity with cold, then best-of for both shapes
    cold_s, service = _best_of(serve_all, rounds=3)
    stats = service.plans.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == len(DEFAULT_BANDWIDTHS) - 1

    def replay():
        for payload in payloads:
            service.predict(payload)

    warm_s, _ = _best_of(replay, rounds=3)
    text = (f"13 bandwidth-varied /predict requests (best of 3):\n"
            f"  cold service (1 compile): {cold_s * 1e3:8.2f} ms\n"
            f"  warm replay (result hits): {warm_s * 1e3:8.2f} ms\n"
            f"  warm speedup:              {cold_s / warm_s:8.1f}x")
    emit("ext_plan_cache_service", text)
    assert cold_s / warm_s >= 2.0
