"""Extension benchmark: closed-loop calibration after a substrate shift.

The paper argues its models are cheap enough to retrain "in the deployed
environment in real-time" (Section 5.2). This benchmark measures that
claim end to end: degrade the simulated substrate's memory bandwidth
efficiency, stream measured times back as feedback, and report how much
accuracy the drift-triggered incremental refit recovers — plus how cheap
the refit step itself is.
"""

import time
from dataclasses import replace

from _shared import emit, once

from repro import zoo
from repro.calibration import incremental_refit
from repro.calibration.demo import (
    DEMO_MODEL,
    observations_from_rows,
    run_drift_demo,
)
from repro.core.base import networks_by_name
from repro.core.persistence import load_document, model_from_dict
from repro.dataset import build_dataset
from repro.gpu import gpu
from repro.gpu.timing import DEFAULT_TIMING
from repro.reporting import render_table

# mild enough to need the change-point test, strong enough that the
# demo's short stream trips it within its three feedback rounds
SHIFTS = (1.5, 1.75, 2.0)


def _shifted_observations(directory, shift):
    """The last scenario's feedback stream, rebuilt for timing the refit."""
    document = load_document(directory / f"{DEMO_MODEL}.versions" /
                             "v1.json")
    roster = zoo.imagenet_roster("small")
    config = replace(
        DEFAULT_TIMING,
        bandwidth_efficiency=DEFAULT_TIMING.bandwidth_efficiency / shift)
    shifted = build_dataset(roster, [gpu("A100")], batch_sizes=(64,),
                            config=config)
    return document, observations_from_rows(
        DEMO_MODEL, model_from_dict(document), shifted,
        networks_by_name(roster))


def test_ext_calibration_recovery(benchmark, tmp_path_factory):
    def sweep():
        reports = []
        for shift in SHIFTS:
            directory = tmp_path_factory.mktemp(f"calib-{shift}")
            reports.append((shift, run_drift_demo(directory, shift=shift),
                            directory))
        return reports

    reports = once(benchmark, sweep)

    # the marginal cost of reacting to drift: one warm-started refit,
    # to contrast with re-running the full training campaign
    shift, _, directory = reports[-1]
    document, observations = _shifted_observations(directory, shift)
    start = time.perf_counter()
    result = incremental_refit(document, observations)
    refit_ms = (time.perf_counter() - start) * 1e3

    rows = []
    for shift_value, rep, _ in reports:
        recovery = (rep.pre_mape - rep.post_mape) / rep.pre_mape
        rows.append((f"x{shift_value:.2f}",
                     f"{rep.pre_mape:.4f}",
                     f"{rep.post_mape:.4f}",
                     f"{recovery:.0%}",
                     f"{rep.correction_slope:.4f}",
                     f"v{rep.promoted_version}"
                     if rep.promoted_version else "-",
                     "yes" if rep.rollback_exact else "NO"))
    text = render_table(
        ["shift", "MAPE before", "MAPE after", "recovered", "slope",
         "promoted", "rollback exact"],
        rows,
        title="Extension: drift-triggered incremental refit on a degraded "
              "substrate (KW model, A100, bs=64)")
    text += (f"\nrefit step alone: {refit_ms:.1f} ms over "
             f"{len(observations)} feedback observations "
             f"(correction slope {result.correction.slope:.4f})")
    emit("ext_calibration", text)

    for shift_value, rep, _ in reports:
        assert rep.ok, f"closed loop failed at shift x{shift_value}"
        assert rep.post_mape < rep.pre_mape
    # stronger shifts need (and get) stronger corrections
    slopes = [rep.correction_slope for _, rep, _ in reports]
    assert slopes == sorted(slopes)
