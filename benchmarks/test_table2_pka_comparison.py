"""Table 2: KW model vs PKS/PKA on ResNet-50 @ V100.

PKS/PKA error and runtime columns are quoted from the PKA paper (as the
original paper does); the KW columns are measured here: prediction error
against the simulated V100 at BS 64/128/256, and wall-clock prediction
time in seconds (the paper's point: seconds, not simulator-hours).
"""

import time

from _shared import emit, once

from repro.core import relative_error
from repro.gpu import SimulatedGPU, gpu
from repro.reporting import render_table
from repro.studies import context
from repro.zoo import resnet50

#: Quoted from the PKA paper via Table 2: batch -> (PKS err%, PKA err%,
#: PKS hours, PKA hours).
PKA_REFERENCE = {
    64: (6.4, 18.0, 10.0, 1.3),
    128: (3.5, 12.0, 8.0, 1.5),
    256: (2.2, 24.0, 18.0, 1.6),
}


def test_table2_kw_vs_pka(benchmark):
    model = context.trained_all_batches("kw", "V100")
    device = SimulatedGPU(gpu("V100"))
    net = resnet50()

    def evaluate():
        rows = []
        for batch in (64, 128, 256):
            start = time.perf_counter()
            predicted = model.predict_network(net, batch)
            seconds = time.perf_counter() - start
            measured = device.run_network(net, batch).e2e_us
            error = relative_error(predicted, measured) * 100
            pks_err, pka_err, pks_h, pka_h = PKA_REFERENCE[batch]
            rows.append((batch, f"{error:.1f}", f"{pks_err:.1f}",
                         f"{pka_err:.1f}", f"{seconds:.4f}s",
                         f"{pks_h}h", f"{pka_h}h"))
        return rows

    rows = once(benchmark, evaluate)
    text = render_table(
        ["Batch", "KW err %", "PKS err %", "PKA err %", "KW time",
         "PKS time", "PKA time"],
        rows,
        title="Table 2: ResNet-50 on V100 — KW model vs PKS/PKA "
              "(PKS/PKA columns quoted from the PKA paper)")
    emit("table2_pka_comparison", text)

    for batch, kw_err, *_ in rows:
        assert float(kw_err) < 10.0, f"BS {batch}: KW error must be small"


def test_table2_prediction_wall_clock(benchmark):
    """The headline speed claim: a full-network prediction in < 0.1 s."""
    model = context.trained_all_batches("kw", "V100")
    net = resnet50()
    benchmark(lambda: model.predict_network(net, 256))
