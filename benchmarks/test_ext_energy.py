"""Extension benchmark: energy prediction via the unchanged KW pipeline.

The introduction motivates the work partly through DNN energy costs
(Green AI, Zeus). The kernel-level methodology is target-agnostic: the
same classified, clustered linear regressions predict per-kernel *energy*
when the dataset's duration columns carry microjoules.
"""

from _shared import emit, once

from repro.core import train_model
from repro.gpu import EnergyMeter, SimulatedGPU, energy_dataset, gpu
from repro.reporting import render_table
from repro.zoo import imagenet_roster


def test_ext_energy_prediction(benchmark):
    networks = imagenet_roster("medium")

    def run():
        data = energy_dataset(networks, gpu("A100"),
                              batch_sizes=[64, 512])
        from repro.dataset import train_test_split
        train, test = train_test_split(data)
        model = train_model(train, "kw", gpu="A100")
        return model, set(test.network_names())

    model, test_names = once(benchmark, run)
    meter = EnergyMeter(SimulatedGPU(gpu("A100")))
    index = {net.name: net for net in networks}

    rows = []
    errors = []
    for name in sorted(test_names):
        net = index[name]
        predicted_uj = model.predict_network(net, 512)
        measurement = meter.measure(net, 512)
        error = abs(predicted_uj / measurement.total_uj - 1.0)
        errors.append(error)
        rows.append((name, f"{measurement.per_image_mj:.1f}",
                     f"{measurement.average_power_w:.0f}",
                     f"{error * 100:.1f}%"))
    mean_error = sum(errors) / len(errors)
    text = render_table(
        ["network", "mJ per image", "avg power (W)", "KW-energy error"],
        rows,
        title=(f"Extension: per-kernel energy prediction on A100 — the "
               f"unchanged KW pipeline reaches {mean_error * 100:.1f}% "
               "mean error on held-out networks"))
    emit("ext_energy", text)

    assert mean_error < 0.10
