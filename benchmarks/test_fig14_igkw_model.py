"""Figure 14: the Inter-GPU KW model predicts an unseen GPU.

Trained on A100 + A40 + GTX 1080 Ti, evaluated on TITAN RTX.
Paper: 15.2% average error, about half the networks within 10%.
"""

from _shared import emit, once

from repro.core import evaluate_model, train_inter_gpu_model
from repro.gpu import IGKW_TEST_GPU, IGKW_TRAIN_GPUS, gpu


def test_fig14_igkw_model(benchmark, split, index):
    train, test = split
    model = once(benchmark, lambda: train_inter_gpu_model(
        train, [gpu(name) for name in IGKW_TRAIN_GPUS]))
    predictor = model.for_gpu(gpu(IGKW_TEST_GPU))
    curve = evaluate_model(predictor, test, index, gpu=IGKW_TEST_GPU,
                           batch_size=512)

    text = curve.render(
        f"Figure 14: IGKW model, trained on {', '.join(IGKW_TRAIN_GPUS)}, "
        f"predicting {IGKW_TEST_GPU} (paper: mean error 0.152)")
    text += (f"\nnetworks within 10% error: "
             f"{curve.fraction_within(0.10) * 100:.0f}% "
             "(paper: about half)")
    emit("fig14_igkw_model", text)

    assert 0.08 < curve.mean_error < 0.25
    assert curve.fraction_within(0.10) > 0.3


def test_fig14_igkw_materialisation_speed(benchmark, split):
    """Materialising a predictor for a new GPU is cheap (per-kernel
    line synthesis only)."""
    train, _ = split
    model = train_inter_gpu_model(
        train, [gpu(name) for name in IGKW_TRAIN_GPUS])
    benchmark(lambda: model.for_gpu(gpu(IGKW_TEST_GPU)))
