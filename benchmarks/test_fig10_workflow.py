"""Figure 10: the training/prediction workflow — and its speed.

Figure 10 is the paper's workflow diagram (dataset → regression training
→ distributable parameters → prediction). This benchmark measures the
costs of each arrow, substantiating the abstract's "fast" claim: training
is seconds, a prediction is microseconds-to-milliseconds, and the
distributable model is tens of kilobytes.
"""

import json
import time

from _shared import emit, once

from repro.core import model_to_dict, train_model
from repro.reporting import render_table
from repro.zoo import resnet50


def test_fig10_workflow_costs(benchmark, split, index):
    train, _ = split

    def measure():
        rows = []
        for name in ("e2e", "lw", "kw"):
            start = time.perf_counter()
            model = train_model(train, name, gpu="A100")
            train_s = time.perf_counter() - start

            net = resnet50()
            model.predict_network(net, 256)   # warm any lazy state
            start = time.perf_counter()
            for _ in range(100):
                model.predict_network(net, 256)
            predict_us = (time.perf_counter() - start) / 100 * 1e6

            size_kb = len(json.dumps(model_to_dict(model))) / 1024
            rows.append((name.upper(), f"{train_s:.2f}s",
                         f"{predict_us:.0f}us", f"{size_kb:.0f} KiB"))
        return rows

    rows = once(benchmark, measure)
    text = render_table(
        ["model", "training time", "prediction (ResNet-50)",
         "distributable size"],
        rows,
        title="Figure 10: workflow costs — training in seconds, "
              "prediction in microseconds, parameters in kilobytes "
              "(vs simulator-hours per prediction)")
    emit("fig10_workflow", text)

    for name, train_s, predict_us, _ in rows:
        assert float(train_s[:-1]) < 60.0, name
        assert float(predict_us[:-2]) < 100_000, name
