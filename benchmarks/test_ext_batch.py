"""Extension: vectorised ``evaluate_many`` amortises the point loop.

A compiled :class:`RetargetablePlan` already amortises the graph walk;
``evaluate_many`` additionally amortises the *per-point* Python loop by
pricing a whole (gpu, bandwidth) grid as a handful of numpy matrix
operations. This benchmark measures the payoff against the scalar
``evaluate`` loop on the paper's 13-point Figure-15/16 bandwidth sweep
and on a dense 121-point design-space grid, asserting bit-exact
agreement in both cases.
"""

from __future__ import annotations

import time

from _shared import emit, once

from repro.gpu import IGKW_TRAIN_GPUS, gpu
from repro.studies import context
from repro.studies.bandwidth_sweep import DEFAULT_BANDWIDTHS
from repro.zoo import resnet50

BATCH_SIZE = 64

#: dense design-space grid: 121 points over the sweep's 200-1400 GB/s
DENSE_BANDWIDTHS = tuple(200.0 + i * 10.0 for i in range(121))


def _best_of(fn, rounds=5):
    """Best-of-N wall time for ``fn``: (seconds, last return value)."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _sweep_case(plan, base, bandwidths):
    targets = [base.with_bandwidth(b) for b in bandwidths]

    def looped():
        return [plan.evaluate(gpu=target) for target in targets]

    def vectorised():
        return plan.evaluate_many(targets)

    return looped, vectorised


def test_evaluate_many_speeds_up_dense_grid(benchmark):
    model = context.trained_igkw(IGKW_TRAIN_GPUS)
    plan = model.compile(resnet50(), BATCH_SIZE)
    base = gpu("TITAN RTX")

    looped, vectorised = _sweep_case(plan, base, DENSE_BANDWIDTHS)
    plan.evaluate_many([base])                    # warm the lowering
    looped_s, looped_times = _best_of(looped)
    batch_s, batch_times = once(benchmark, lambda: _best_of(vectorised))
    speedup = looped_s / batch_s

    text = (f"{len(DENSE_BANDWIDTHS)}-point dense bandwidth grid, "
            f"resnet50 @ bs{BATCH_SIZE} on TITAN RTX variants "
            f"(best of 5):\n"
            f"  scalar evaluate loop: {looped_s * 1e3:8.2f} ms\n"
            f"  one evaluate_many:    {batch_s * 1e3:8.2f} ms\n"
            f"  speedup:              {speedup:8.1f}x")
    emit("ext_batch", text)

    # bit-exact: the vectorised path replays the scalar arithmetic
    assert batch_times == looped_times
    assert speedup >= 5.0


def test_evaluate_many_speeds_up_paper_sweep():
    model = context.trained_igkw(IGKW_TRAIN_GPUS)
    plan = model.compile(resnet50(), BATCH_SIZE)
    base = gpu("TITAN RTX")

    looped, vectorised = _sweep_case(plan, base, DEFAULT_BANDWIDTHS)
    plan.evaluate_many([base])                    # warm the lowering
    looped_s, looped_times = _best_of(looped)
    batch_s, batch_times = _best_of(vectorised)
    speedup = looped_s / batch_s

    text = (f"{len(DEFAULT_BANDWIDTHS)}-point Figure-15/16 sweep, "
            f"resnet50 @ bs{BATCH_SIZE} on TITAN RTX variants "
            f"(best of 5):\n"
            f"  scalar evaluate loop: {looped_s * 1e3:8.2f} ms\n"
            f"  one evaluate_many:    {batch_s * 1e3:8.2f} ms\n"
            f"  speedup:              {speedup:8.1f}x")
    emit("ext_batch_sweep", text)

    assert batch_times == looped_times
    # shorter grid -> less to amortise; the dense-grid test carries the
    # headline >=5x claim
    assert speedup >= 2.0
