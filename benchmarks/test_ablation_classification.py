"""Ablation: kernel classification on vs off.

With classification off, every kernel regresses against layer FLOPs (the
naive choice). The paper's O5 argument predicts a clear accuracy loss:
pre-/post-processing kernel times track data sizes, not operation counts.
"""

from _shared import emit, once

from repro.core import evaluate_model
from repro.core.classification import classify_kernels
from repro.core.kernelwise import (
    KernelMappingTable,
    KernelTablePredictor,
)
from repro.core.layerwise import LayerWiseModel
from repro.core.linreg import fit_line
from repro.reporting import render_table
from repro.studies import context


def _per_kernel_predictor(train, classify: bool):
    """An unclustered KW-style predictor, with or without classification.

    Both variants fit one line per kernel so the comparison isolates the
    classification step (the default KW model also clusters, which would
    confound the ablation).
    """
    a100 = train.for_gpu("A100").at_batch(512)
    table = KernelMappingTable.learn(a100)
    lines = {}
    classified = classify_kernels(a100) if classify else None
    for name, rows in a100.kernels_by_name().items():
        if classify:
            entry = classified[name]
            lines[name] = (entry.feature, entry.fit)
        else:
            fit = fit_line([row.flops for row in rows],
                           [row.duration_us for row in rows])
            lines[name] = ("flops", fit)
    label = "KW-perkernel" if classify else "KW-noclass"
    return KernelTablePredictor(table, lines,
                                LayerWiseModel().train(a100), name=label)


def test_ablation_classification_off(benchmark, split, index):
    train, test = split
    naive = once(benchmark,
                 lambda: _per_kernel_predictor(train, classify=False))
    with_classes = _per_kernel_predictor(train, classify=True)

    naive_curve = evaluate_model(naive, test, index, gpu="A100",
                                 batch_size=512)
    full_curve = evaluate_model(with_classes, test, index, gpu="A100",
                                batch_size=512)

    # where classification actually matters: per-kernel fit quality of
    # the data-movement kernels attached to CONV layers, whose layer
    # FLOPs are *not* proportional to the data size they move (the
    # winograd/im2col transforms). Element-wise kernels' FLOPs are
    # proportional to their data size, so network-level error barely
    # moves — an honest nuance the table records.
    a100 = train.for_gpu("A100").at_batch(512)
    entries = classify_kernels(a100)
    transforms = [e for e in entries.values()
                  if e.feature != "flops"
                  and e.fit.n_samples >= 30
                  and e.r2_by_feature["flops"] < e.fit.r2 - 1e-6]
    winner_r2 = sorted(e.fit.r2 for e in transforms)
    flops_r2 = sorted(e.r2_by_feature["flops"] for e in transforms)
    median_winner = winner_r2[len(winner_r2) // 2]
    median_flops = flops_r2[len(flops_r2) // 2]

    text = render_table(
        ["variant", "network error", "median transform-kernel R2"],
        [("KW with classification (paper design)",
          f"{full_curve.mean_error:.3f}", f"{median_winner:.3f}"),
         ("KW, all kernels regressed on FLOPs",
          f"{naive_curve.mean_error:.3f}", f"{median_flops:.3f}")],
        title=(f"Ablation: kernel classification — {len(transforms)} "
               "conv-transform kernels fit strictly better with their "
               "classified driver; element-wise kernels' FLOPs are "
               "size-proportional, so network-level error moves little"))
    emit("ablation_classification", text)

    assert median_winner > median_flops
    assert full_curve.mean_error <= naive_curve.mean_error + 0.02
