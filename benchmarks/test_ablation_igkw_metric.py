"""Ablation: the IGKW transfer metric — bandwidth vs peak FP32 TFLOPS.

Section 7 ("Why FLOPs for the inter-DNN model? Why not memory
bandwidth?") argues bandwidth is the right *inter-device* metric because
the workloads are effectively memory-intensive. Regressing kernel rates
against peak TFLOPS instead should transfer worse — the A40's inflated
dual-issue FP32 rating alone breaks the trend.
"""

from _shared import emit, once

from repro.core import InterGPUKernelWiseModel, evaluate_model
from repro.gpu import IGKW_TEST_GPU, IGKW_TRAIN_GPUS, gpu
from repro.reporting import render_table


def test_ablation_igkw_driver_metric(benchmark, split, index):
    train, test = split
    train_specs = [gpu(name) for name in IGKW_TRAIN_GPUS]
    names = set(IGKW_TRAIN_GPUS)
    base = train.filter(batch_size=512)
    from repro.dataset import PerformanceDataset
    subset = PerformanceDataset(
        kernel_rows=[r for r in base.kernel_rows if r.gpu in names],
        layer_rows=[r for r in base.layer_rows if r.gpu in names],
        network_rows=[r for r in base.network_rows if r.gpu in names],
    )

    def train_both():
        out = {}
        for metric in ("bandwidth", "tflops"):
            model = InterGPUKernelWiseModel(driver_metric=metric)
            model.train(subset, train_specs)
            out[metric] = model
        return out

    models = once(benchmark, train_both)
    rows = []
    errors = {}
    for metric, model in models.items():
        curve = evaluate_model(model.for_gpu(gpu(IGKW_TEST_GPU)), test,
                               index, gpu=IGKW_TEST_GPU, batch_size=512)
        errors[metric] = curve.mean_error
        rows.append((metric, f"{curve.mean_error:.3f}"))
    text = render_table(
        ["transfer metric", f"error on {IGKW_TEST_GPU}"], rows,
        title="Ablation: IGKW second-level regression metric "
              "(paper argues for memory bandwidth, per O6)")
    emit("ablation_igkw_metric", text)

    assert errors["bandwidth"] < errors["tflops"]
