"""Extension benchmark: cost-aware bandwidth selection (case study 1+).

Automates the reading the paper does by eye on Figures 15-16: given a
workload mix and latency targets, find the cheapest memory configuration
of a customised TITAN RTX that meets all of them.
"""

from _shared import emit, once

from repro.gpu import IGKW_TRAIN_GPUS, gpu
from repro.reporting import render_table
from repro.studies import context
from repro.studies.design_space import WorkloadTarget, search_bandwidth
from repro.zoo import densenet169, resnet50

BANDWIDTHS = (200, 300, 400, 500, 600, 672, 800, 1000, 1200, 1400)


def test_ext_cost_aware_bandwidth_selection(benchmark):
    model = context.trained_igkw(IGKW_TRAIN_GPUS)
    base = gpu("TITAN RTX")

    # latency targets at 110% of the stock TITAN RTX's predicted times:
    # "we want a custom GPU that is at most 10% slower than stock"
    stock = model.for_gpu(base)
    targets = [
        WorkloadTarget(net, 64,
                       stock.predict_network(net, 64) / 1e3 * 1.10)
        for net in (resnet50(), densenet169())
    ]

    result = once(benchmark, lambda: search_bandwidth(
        model, base, targets, BANDWIDTHS))

    rows = []
    for point in result.points:
        rows.append((f"{point.bandwidth_gbs:.0f}",
                     f"${point.cost_usd:.0f}")
                    + tuple(f"{point.predicted_ms[t.network.name]:.1f}"
                            for t in targets)
                    + ("yes" if point.meets_all_targets else "no",))
    chosen = result.cheapest_feasible
    text = render_table(
        ["GB/s", "memory cost"]
        + [f"{t.network.name} (ms, target {t.target_ms:.1f})"
           for t in targets]
        + ["feasible"],
        rows,
        title=("Extension: cheapest customised TITAN RTX within 10% of "
               f"stock performance -> {chosen.bandwidth_gbs:.0f} GB/s "
               f"(${chosen.cost_usd:.0f}; stock 672 GB/s costs "
               f"${result.points[5].cost_usd:.0f})"))
    emit("ext_design_space", text)

    assert chosen is not None
    # the search recovers the paper's reading: a meaningfully cheaper
    # configuration than stock still meets the targets
    assert chosen.bandwidth_gbs < 672
    # and the frontier is non-trivial
    assert len(result.frontier()) >= 3
