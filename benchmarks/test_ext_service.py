"""Extension benchmark: the live prediction service under load.

The serving simulator (ext_serving) predicts how a GPU would serve
traffic; this benchmark measures how the *predictor itself* serves
traffic as infrastructure. A threaded HTTP server hosts standard-campaign
models and a Poisson load generator sweeps offered rates, reporting
achieved throughput, latency percentiles, and the cache's contribution.
"""

import threading

from _shared import emit, once

from repro.core import save_model, train_inter_gpu_model
from repro.gpu import gpu
from repro.reporting import render_table
from repro.service import (
    LoadGenerator,
    ModelRegistry,
    PredictionCache,
    PredictionService,
    make_server,
)
from repro.studies import context

RATES_RPS = (100, 500, 2000)
N_REQUESTS = 150
NETWORKS = ("resnet50", "densenet121", "mobilenet_v2", "vgg11")


def test_ext_service_under_load(benchmark, tmp_path_factory):
    directory = tmp_path_factory.mktemp("service-models")
    save_model(context.trained("kw", "A100"), directory / "kw-a100.json")
    save_model(context.trained("e2e", "A100"),
               directory / "e2e-a100.json")
    train, _ = context.standard_split()
    save_model(train_inter_gpu_model(
        train, [gpu("A100"), gpu("TITAN RTX")]), directory / "igkw.json")

    registry = ModelRegistry(directory)
    service = PredictionService(registry, cache=PredictionCache(4096))
    server = make_server(service, port=0)
    host, port = server.server_address[:2]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://{host}:{port}"
    payloads = [{"model": "kw-a100", "network": name, "batch_size": 64}
                for name in NETWORKS]
    payloads.append({"model": "igkw", "network": "resnet50",
                     "batch_size": 64, "gpu": "V100"})

    def sweep():
        reports = []
        for rate in RATES_RPS:
            generator = LoadGenerator(url, payloads, rate_rps=rate,
                                      n_requests=N_REQUESTS, threads=8,
                                      seed=3)
            reports.append((rate, generator.run()))
        return reports

    try:
        reports = once(benchmark, sweep)
    finally:
        server.shutdown()
        server.server_close()

    rows = []
    for rate, report in reports:
        rows.append((rate,
                     f"{report.achieved_rps:.0f}",
                     f"{report.mean_latency_ms:.2f}",
                     f"{report.latency_percentile_ms(50):.2f}",
                     f"{report.latency_percentile_ms(99):.2f}",
                     f"{report.cache_hits / max(report.succeeded, 1):.0%}"))
    text = render_table(
        ["offered (req/s)", "achieved (req/s)", "mean (ms)", "p50 (ms)",
         "p99 (ms)", "cache hits"],
        rows,
        title="Extension: live prediction service under Poisson load "
              "(KW + IGKW models, threaded HTTP server)")
    emit("ext_service", text)

    for rate, report in reports:
        assert report.failed == 0
        assert report.succeeded == N_REQUESTS
    # the cache makes repeat traffic cheap: the final sweep is mostly hits
    final = reports[-1][1]
    assert final.cache_hits / final.succeeded > 0.5
