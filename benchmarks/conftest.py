"""Benchmark fixtures: the standard campaign, built once per session."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.studies import context  # noqa: E402


@pytest.fixture(scope="session")
def standard_dataset():
    return context.standard_dataset()


@pytest.fixture(scope="session")
def split():
    return context.standard_split()


@pytest.fixture(scope="session")
def index():
    return context.network_index()


@pytest.fixture(scope="session")
def roster():
    return context.standard_roster()
