"""Extension benchmark: fleet-scale placement policy comparison.

The paper's case study 3 picks the best GPU for nine jobs; this
extension scales the same prediction machinery to a datacenter: 1,000
heterogeneous Table-1 GPUs serve one million requests over a mixed zoo
roster, and every registered placement policy routes the identical
trace. Routing reads only the ahead-of-time exec table — the predictor
is never invoked inside the simulation loop — which is what makes the
million-request comparison run in seconds on one core.

The headline assertion mirrors the study module's: the predicted-
time-aware policy beats the heterogeneity-blind baselines (random,
round-robin) on p99 latency and on $-cost per thousand SLO-met
requests.
"""

from _shared import emit, once

from repro.fleet import policy_names
from repro.studies.fleet_study import run_fleet_study

WALL_CLOCK_BUDGET_S = 60.0


def test_ext_fleet_policy_comparison(benchmark):
    report = once(benchmark,
                  lambda: run_fleet_study(scale="large", seed=0))
    emit("ext_fleet", report.render())

    # every registered policy routed the identical million-request trace
    assert sorted(report.policies()) == policy_names()
    assert all(result.n_requests == 1_000_000
               for result in report.results)

    predicted = report.result("predicted")
    for blind in ("random", "round_robin"):
        result = report.result(blind)
        assert predicted.p99_us < result.p99_us
        assert predicted.cost_per_1k_slo_usd < result.cost_per_1k_slo_usd
    assert report.best("p99_us").policy == "predicted"

    # the acceptance bar: >=1,000 GPUs x >=1,000,000 requests x every
    # policy, under a minute of wall clock for the whole comparison
    assert report.elapsed_s is not None
    assert report.elapsed_s < WALL_CLOCK_BUDGET_S
