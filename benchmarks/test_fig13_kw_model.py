"""Figure 13 + Section 5.4: the Kernel-Wise model.

Reproduces: the A100 S-curve (paper: 7% error, asymmetric — almost no
underestimation, a small overestimation tail for under-utilising
networks), the per-GPU error table (paper: 6% A40, 7% A100, 7.8% 1080 Ti,
9.2% TITAN, 9.4% V100), the kernel/model counts (paper: 182 kernels → 83
models), and the transformer extension (paper: ~4.76% on A100).
"""

from _shared import emit, once

from repro.core import evaluate_model, train_model
from repro.reporting import render_table
from repro.studies import context


def test_fig13_kw_model_a100(benchmark, split, index):
    train, test = split
    model = once(benchmark, lambda: train_model(train, "kw", gpu="A100"))
    curve = evaluate_model(model, test, index, gpu="A100", batch_size=512)

    text = curve.render(
        f"Figure 13: KW model on A100, {len(curve.ratios)} test networks "
        f"(paper: mean error 0.07)")
    text += (f"\nkernels recorded: {model.n_kernels} (paper: 182), "
             f"regression models after clustering: {model.n_models} "
             f"(paper: 83)")
    emit("fig13_kw_model", text)

    assert curve.mean_error < 0.10, "KW error must be single-digit"
    assert model.n_models < model.n_kernels, "clustering must merge"


def test_fig13_kw_per_gpu_errors(benchmark, split, index):
    train, test = split
    paper = {"A40": 0.06, "A100": 0.07, "GTX 1080 Ti": 0.078,
             "TITAN RTX": 0.092, "V100": 0.094}

    def evaluate_all():
        rows = []
        for name in ("A40", "A100", "GTX 1080 Ti", "TITAN RTX", "V100"):
            model = context.trained("kw", name)
            curve = evaluate_model(model, test, index, gpu=name,
                                   batch_size=512)
            rows.append((name, curve.mean_error, paper[name]))
        return rows

    rows = once(benchmark, evaluate_all)
    emit("fig13_kw_per_gpu", render_table(
        ["GPU", "KW error (measured)", "KW error (paper)"],
        [(name, f"{measured:.3f}", f"{reference:.3f}")
         for name, measured, reference in rows],
        title="Section 5.4: KW model error per GPU"))
    for name, measured, _ in rows:
        assert measured < 0.10, name


def test_fig13_kw_overestimation_tail(benchmark, split, index):
    """The asymmetric tail: small workloads are overestimated because
    summed per-kernel durations double-count launch startup the real
    pipeline hides. At batch size 8 the whole test-set distribution
    shifts above 1, with a tail in the paper's +15%..+100% range."""
    model = context.trained_all_batches("kw", "A100")
    _, test = split

    def small_batch_curve():
        return evaluate_model(model, test, index, gpu="A100",
                              batch_size=8)

    curve = once(benchmark, small_batch_curve)
    emit("fig13_small_batch_tail", curve.render(
        "KW at batch size 8 on A100 (trained on all batch sizes) — the "
        "distribution shifts to overestimation, paper: +15%..+100% for "
        "under-utilising networks"))
    assert curve.median_ratio > 1.0, "small workloads skew overestimated"
    assert curve.at_percentile(90) > 1.15, "the tail reaches +15% or more"
    assert curve.underestimated_fraction() < 0.5


def test_fig13_kw_transformers(benchmark):
    """The transformer extension (paper: ~4.76% error on A100)."""
    train, test = context.text_split()
    model = once(benchmark,
                 lambda: train_model(train, "kw", gpu="A100",
                                     batch_size=context.TEXT_BATCH_SIZE))
    curve = evaluate_model(model, test, context.text_index(), gpu="A100",
                           batch_size=context.TEXT_BATCH_SIZE)
    emit("fig13_kw_transformers", curve.render(
        f"KW on text-classification transformers, A100 "
        f"({len(curve.ratios)} test networks; paper: mean error 0.0476)"))
    assert curve.mean_error < 0.12


def test_fig13_kw_prediction_speed(benchmark, index):
    model = context.trained("kw", "A100")
    net = index["resnet50"]
    benchmark(lambda: model.predict_network(net, 512))
