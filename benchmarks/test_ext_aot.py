"""Extension: the AOT compile store collapses service cold-start.

A cold service pays for the whole lowering pipeline on the first request
per (network, batch): build the zoo network's layer graph, walk it,
resolve kernel sequences and regression lines. With a plan bundle next
to the model file (``repro compile``), the registry preloads finished
plans and those first requests are answered from the store — no graph
is ever built. This benchmark measures cold-start-to-first-prediction
across a served roster of deep networks, with and without a warm store:
the time from process-fresh registry construction until every network
has answered its first request.
"""

from __future__ import annotations

import time

from _shared import emit, once

from repro import core
from repro.core.planopt import compile_store
from repro.core.workflow import train_model
from repro.dataset import build_dataset
from repro.gpu import gpu
from repro.service import ModelRegistry, PredictionService
from repro.zoo import build as build_network

#: Deep networks where lowering is most expensive — the workloads an
#: AOT store exists for.
ROSTER = ("densenet121", "densenet161", "densenet169",
          "densenet201", "resnet101", "resnet152")
BATCH_SIZE = 64


def _best_of(fn, rounds=5):
    """Best-of-N wall time for ``fn``: (seconds, last return value)."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_warm_store_speeds_up_cold_start(benchmark, tmp_path_factory):
    campaign = [build_network(name) for name in ("resnet18",
                                                 "mobilenet_v2")]
    data = build_dataset(campaign, [gpu("A100"), gpu("TITAN RTX")],
                         batch_sizes=(BATCH_SIZE,))
    model = train_model(data, "kw", gpu="A100", batch_size=BATCH_SIZE)
    bare_dir = tmp_path_factory.mktemp("bare-models")
    aot_dir = tmp_path_factory.mktemp("aot-models")
    for directory in (bare_dir, aot_dir):
        core.save_model(model, directory / "kw.json")
    report = compile_store(aot_dir, network_names=list(ROSTER),
                           batch_sizes=[BATCH_SIZE], verify=True)
    assert report.ok

    def first_predictions(directory):
        # everything a restart pays for: registry scan (model load and,
        # when present, bundle preload), service wiring, and the first
        # request of every served network
        service = PredictionService(ModelRegistry(directory))
        return [service.predict({"model": "kw", "network": name,
                                 "batch_size": BATCH_SIZE})
                for name in ROSTER]

    cold_s, cold = _best_of(lambda: first_predictions(bare_dir))
    warm_s, warm = once(
        benchmark, lambda: _best_of(lambda: first_predictions(aot_dir)))
    speedup = cold_s / warm_s

    text = (f"cold start to first /predict on {len(ROSTER)} deep "
            f"networks @ bs{BATCH_SIZE} (best of 5):\n"
            f"  no bundle (lazy lowering): {cold_s * 1e3:8.2f} ms\n"
            f"  warm store (AOT plans):    {warm_s * 1e3:8.2f} ms\n"
            f"  speedup:                   {speedup:8.1f}x")
    emit("ext_aot", text)

    # the store answered every first request without compiling anything
    assert all(response["plan_cached"] for response in warm)
    assert not any(response["plan_cached"] for response in cold)
    # bit-exact: AOT plans replay the lazy path's arithmetic
    assert [response["predicted_us"] for response in warm] == \
        [response["predicted_us"] for response in cold]
    assert speedup >= 5.0
