"""Extension benchmark: operator fusion (the nn-Meter problem).

The related work singles out nn-Meter for handling "non-standard fused
kernels" on edge devices. This study shows the same kernel-level
machinery prices fused graphs once fusion is a graph transform: fused
CONV+BN+activation kernels get their own mapping-table entries and lines,
and the KW model stays accurate on deployment-optimised networks.
"""

from _shared import emit, once

from repro.core import evaluate_model, networks_by_name, train_model
from repro.dataset import build_dataset, train_test_split
from repro.gpu import SimulatedGPU, gpu
from repro.nn import fuse_conv_bn_relu, fusion_summary
from repro.reporting import render_table
from repro.zoo import imagenet_roster


def test_ext_fusion_speedup_and_accuracy(benchmark):
    networks = imagenet_roster("medium")
    fused_roster = [fuse_conv_bn_relu(net) for net in networks]
    device = SimulatedGPU(gpu("A100"))

    def run():
        data = build_dataset(fused_roster, [gpu("A100")],
                             batch_sizes=[64, 512])
        train, test = train_test_split(data)
        model = train_model(train, "kw", gpu="A100")
        curve = evaluate_model(model, test, networks_by_name(fused_roster),
                               gpu="A100", batch_size=512)
        return curve

    curve = once(benchmark, run)

    rows = []
    for original in networks[:6]:
        fused = fuse_conv_bn_relu(original)
        removed, tagged = fusion_summary(original, fused)
        baseline = device.run_network(original, 64).e2e_us
        optimised = device.run_network(fused, 64).e2e_us
        rows.append((original.name, len(original), len(fused),
                     tagged, f"{baseline / optimised:.2f}x"))
    text = render_table(
        ["network", "layers", "fused layers", "fused convs", "speedup"],
        rows,
        title=("Extension: CONV+BN+activation fusion — KW error on fused "
               f"graphs: {curve.mean_error:.3f} "
               f"({len(curve.ratios)} held-out networks)"))
    emit("ext_fusion", text)

    assert curve.mean_error < 0.10, \
        "the KW machinery must price fused kernels accurately"
    # every network with fusable chains speeds up (AlexNet has no BN
    # to fuse and legitimately stays at 1.00x)
    fused_speedups = [float(r[-1][:-1]) for r in rows if r[3] > 0]
    assert all(s > 1.0 for s in fused_speedups)
    assert max(fused_speedups) > 1.15
