"""Figure 7: different layer types fall on different linear trend lines."""

from _shared import emit, once

from repro.reporting import render_scatter, render_table
from repro.studies.observations import layer_cloud_fits, layer_clouds

KINDS = ("BN", "CONV", "FC", "MaxPool")


def test_fig07_layer_type_lines(benchmark, standard_dataset):
    fits = once(benchmark,
                lambda: layer_cloud_fits(standard_dataset, "A100", KINDS))
    clouds = layer_clouds(standard_dataset, "A100", KINDS)

    rows = []
    for kind in KINDS:
        fit = fits[kind]
        rows.append((kind, len(clouds[kind]), f"{fit.slope:.3f}",
                     f"{fit.r2:.3f}"))
    text = render_table(
        ["layer type", "layers", "ms per GFLOP", "R2"],
        rows,
        title="Figure 7: layer time vs layer FLOPs per type on A100 — "
              "BN/Pooling steep and near-perfectly linear, CONV/FC "
              "efficient with a wider cloud (O4)")
    series = {}
    for kind in KINDS:
        sample = clouds[kind][:: max(1, len(clouds[kind]) // 400)]
        series[kind] = [(g, ms) for g, ms in sample if g > 0 and ms > 0]
    plot = render_scatter("layer clouds (log-log):", series,
                          "layer GFLOPs", "layer ms",
                          log_x=True, log_y=True)
    emit("fig07_layer_lines", text + "\n\n" + plot)

    # BN and pooling are markedly less efficient than CONV and FC
    assert fits["BN"].slope > 2 * fits["CONV"].slope
    assert fits["MaxPool"].slope > fits["CONV"].slope
    # BN's trend is near-perfect; CONV's cloud is wider (mixed algorithms)
    assert fits["BN"].r2 > 0.97
    assert fits["CONV"].r2 < fits["BN"].r2
