"""Figure 4: ResNet and VGG networks fall on different lines (BS 512)."""

from _shared import emit, once

from repro.reporting import render_table
from repro.studies.observations import family_lines


def test_fig04_resnet_vs_vgg_lines(benchmark, standard_dataset):
    lines = once(benchmark,
                 lambda: family_lines(standard_dataset, "A100", 512))

    rows = []
    for family, fit in sorted(lines.items()):
        rows.append((family, f"{fit.slope * 1e9 / 1e3:.2f}",
                     f"{fit.r2:.3f}", fit.n_samples))
    ratio = lines["resnet"].slope / lines["vgg"].slope
    text = render_table(
        ["family", "ms per GFLOP", "R2", "networks"],
        rows,
        title=(f"Figure 4: per-family FLOPs->time lines at BS 512 on A100 "
               f"(ResNet/VGG slope ratio = {ratio:.2f}; the paper shows "
               "VGG on the flatter, more efficient line)"))
    emit("fig04_family_lines", text)

    assert ratio > 1.3, "O2: the GPU is more efficient on VGG"
    assert lines["resnet"].r2 > 0.8 and lines["vgg"].r2 > 0.8
