"""Table 1: GPUs used in the experiments."""

from _shared import emit, once

from repro.gpu import GPUS
from repro.reporting import render_table


def test_table1_gpu_catalogue(benchmark):
    def build_rows():
        return [
            (spec.name, spec.bandwidth_gbs, spec.memory_gb,
             spec.fp32_tflops, spec.tensor_cores)
            for spec in GPUS.values()
        ]

    rows = once(benchmark, build_rows)
    text = render_table(
        ["GPU", "Bandwidth (GB/s)", "Memory (GB)", "TFLOPS (FP32)",
         "Tensor Cores"],
        rows, title="Table 1: GPUs used in the experiments")
    emit("table1_gpus", text)
    assert len(rows) == 7
