"""Figure 18: measured vs predicted times on A40 and TITAN RTX.

Case study 3, part 1: per-network GPU selection. Paper: "our performance
model correctly selects the GPU that runs faster for all the DNNs".
"""

from _shared import emit, once

from repro.gpu import gpu
from repro.reporting import render_table
from repro.studies import context
from repro.studies.scheduling_study import STUDY_GPUS, run_scheduling_study
from repro.zoo import scheduling_roster


def test_fig18_gpu_selection(benchmark):
    predictors = {name: context.trained_all_batches("kw", name)
                  for name in STUDY_GPUS}
    networks = scheduling_roster()
    specs = [gpu(name) for name in STUDY_GPUS]

    study = once(benchmark,
                 lambda: run_scheduling_study(predictors, networks, specs))

    rows = []
    for decision in study.decisions:
        a40_m = decision.measured_us["A40"] / 1e3
        titan_m = decision.measured_us["TITAN RTX"] / 1e3
        a40_p = decision.predicted_us["A40"] / 1e3
        titan_p = decision.predicted_us["TITAN RTX"] / 1e3
        rows.append((decision.network, f"{a40_m:.1f}", f"{a40_p:.1f}",
                     f"{titan_m:.1f}", f"{titan_p:.1f}",
                     decision.predicted_best,
                     "yes" if decision.correct else "NO"))
    text = render_table(
        ["network", "A40 meas (ms)", "A40 pred (ms)",
         "TITAN meas (ms)", "TITAN pred (ms)", "picked", "correct"],
        rows,
        title=(f"Figure 18: measured vs predicted on A40 and TITAN RTX — "
               f"placement accuracy "
               f"{study.placement_accuracy * 100:.0f}% (paper: 100%). "
               "In this substrate the A40 dominates all nine networks."))
    emit("fig18_gpu_selection", text)

    # count/total is exactly 1.0 when every placement is correct
    assert study.placement_accuracy == 1.0  # repro: noqa[FP001]
