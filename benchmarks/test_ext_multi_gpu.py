"""Extension benchmark: multi-GPU data-parallel training scaling.

The discussion section names multi-GPU training architecture as a target
domain for the predictor. This study combines the training-mode KW model
with a ring all-reduce cost model and reports the classic scaling tables:
efficiency vs GPU count per interconnect, and the interconnect bandwidth
each model needs for 95% weak-scaling efficiency.
"""

from _shared import emit, once

from repro.core import train_model
from repro.dataset import build_dataset, train_test_split
from repro.gpu import gpu
from repro.reporting import render_table
from repro.sim.links import Link
from repro.studies.multi_gpu import bandwidth_requirement, scaling_curve
from repro.zoo import bert, imagenet_roster, resnet50, vgg16

GPU_COUNTS = (1, 2, 4, 8, 16, 32)
INTERCONNECTS = {
    "PCIe 3.0 x16 (16 GB/s)": Link(16, latency_us=3.0),
    "NVLink (300 GB/s)": Link(300, latency_us=2.0),
}


def _training_predictor():
    networks = imagenet_roster("medium") + [bert("base"), bert("small")]
    data = build_dataset(networks, [gpu("A100")], batch_sizes=[4, 16, 64],
                         training=True)
    train, _ = train_test_split(data)
    return train_model(train, "kw", gpu="A100", batch_size=None)


def test_ext_scaling_efficiency(benchmark):
    predictor = once(benchmark, _training_predictor)
    rows = []
    # no-overlap analysis at latency-oriented batches: the conservative
    # bound a system architect sizes the interconnect against
    for net, per_gpu_batch in ((resnet50(), 8), (vgg16(), 4),
                               (bert("base"), 4)):
        for label, link in INTERCONNECTS.items():
            curve = scaling_curve(predictor, net, per_gpu_batch,
                                  GPU_COUNTS, link, overlap=0.0)
            rows.append((net.name, label)
                        + tuple(f"{s.scaling_efficiency * 100:.0f}%"
                                for s in curve))
    text = render_table(
        ["network", "interconnect"] + [f"{n} GPUs" for n in GPU_COUNTS],
        rows,
        title="Extension: weak-scaling efficiency of data-parallel "
              "training (training-mode KW compute + ring all-reduce, "
              "no compute/comm overlap)")
    emit("ext_multi_gpu_scaling", text)

    # sanity of the classic shape: NVLink scales better than PCIe, and
    # efficiency never improves with more GPUs
    by_key = {(r[0], r[1]): r[2:] for r in rows}
    for net in ("resnet50", "vgg16", "bert_base"):
        pcie = [float(v[:-1]) for v in by_key[(net,
                                               "PCIe 3.0 x16 (16 GB/s)")]]
        nvlink = [float(v[:-1]) for v in by_key[(net, "NVLink (300 GB/s)")]]
        assert all(n >= p for n, p in zip(nvlink, pcie))
        assert pcie == sorted(pcie, reverse=True)


def test_ext_interconnect_requirements(benchmark):
    predictor = _training_predictor()
    bandwidths = (4, 8, 16, 32, 64, 128, 256, 512)

    def sweep():
        rows = []
        for net, per_gpu_batch in ((resnet50(), 16), (vgg16(), 8),
                                   (bert("base"), 8)):
            need, _ = bandwidth_requirement(predictor, net, per_gpu_batch,
                                            8, bandwidths)
            grads_mb = net.total_params() * 4 / 1e6
            rows.append((net.name, f"{grads_mb:.0f}",
                         "unreachable" if need == float("inf")
                         else f"{need:.0f}"))
        return rows

    rows = once(benchmark, sweep)
    text = render_table(
        ["network", "gradient MB", "GB/s needed for 95% eff @ 8 GPUs"],
        rows,
        title="Extension: interconnect bandwidth requirements "
              "(8-way data parallel)")
    emit("ext_multi_gpu_requirements", text)

    needs = {name: value for name, _, value in rows}
    # parameter-heavy VGG needs a beefier interconnect than ResNet
    assert (needs["vgg16"] == "unreachable"
            or float(needs["vgg16"]) >= float(needs["resnet50"]))
