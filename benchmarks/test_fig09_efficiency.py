"""Figure 9: bandwidth efficiency is stable across GPUs; compute is not."""

from _shared import emit, once

from repro.gpu import gpu
from repro.reporting import render_table
from repro.studies.observations import efficiency_study
from repro.zoo import resnet18

#: The GPUs shown in Figure 9.
FIG9_GPUS = ("A40", "A100", "GTX 1080 Ti", "TITAN RTX", "RTX A5000",
             "Quadro P620")


def test_fig09_efficiency_study(benchmark):
    specs = [gpu(name) for name in FIG9_GPUS]
    rows = once(benchmark,
                lambda: efficiency_study([resnet18()], specs,
                                         batch_size=64))

    table = [(name, f"{bw * 100:.1f}%", f"{compute * 100:.1f}%")
             for name, bw, compute in rows]
    text = render_table(
        ["GPU", "BW efficiency", "Compute efficiency"],
        table,
        title="Figure 9: ResNet-18 efficiency estimates from layer shapes "
              "— bandwidth efficiency stays around 10% on every GPU, "
              "compute efficiency does not (O6)")
    emit("fig09_efficiency", text)

    bw = [r[1] for r in rows]
    compute = [r[2] for r in rows]
    assert all(0.05 < value < 0.16 for value in bw), \
        "bandwidth efficiency must stay around 10%"
    assert max(compute) / min(compute) > max(bw) / min(bw), \
        "compute efficiency must vary more than bandwidth efficiency"
