"""Figure 15: ResNet-50 on TITAN RTX with modified memory bandwidth.

Case study 1: the IGKW model evaluates hypothetical GPU configurations.
Paper: performance improves with bandwidth; the ideal range is around
600-800 GB/s — TITAN RTX's stock 672 GB/s falls inside it.
"""

from _shared import emit, once

from repro.gpu import IGKW_TRAIN_GPUS, gpu
from repro.reporting import render_series
from repro.studies import context
from repro.studies.bandwidth_sweep import bandwidth_sweep
from repro.zoo import resnet50


def test_fig15_resnet50_bandwidth_sweep(benchmark):
    model = context.trained_igkw(IGKW_TRAIN_GPUS)
    base = gpu("TITAN RTX")
    sweep = once(benchmark,
                 lambda: bandwidth_sweep(model, resnet50(), base, 64))

    points = [(b, t / 1e3) for b, t in sweep.points]
    marginal = [(b2, (t1 - t2) / t1 * 100)
                for (b1, t1), (b2, t2) in zip(points, points[1:])]
    text = render_series(
        "Figure 15: predicted ResNet-50 time (ms) on TITAN RTX vs memory "
        "bandwidth (stock = 672 GB/s)", points, "GB/s", "ms")
    text += "\nmarginal gain per +100 GB/s: " + " ".join(
        f"{b:.0f}:{g:.1f}%" for b, g in marginal)
    emit("fig15_resnet_bw_sweep", text)

    assert sweep.monotonic_non_increasing(tolerance=0.05)
    # performance improves steeply below ~600 and flattens beyond ~800:
    # marginal gains above 800 GB/s are all under 10% per step
    steep = [g for b, g in marginal if b <= 600]
    flat = [g for b, g in marginal if b > 800]
    assert max(steep) > 10.0
    assert all(g < 10.0 for g in flat)
