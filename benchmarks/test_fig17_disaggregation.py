"""Figure 17: network bandwidth needs of memory-disaggregated GPU systems.

Case study 2: the KW model supplies per-layer times to an event-driven
system simulation (MGPUSim-style). Paper: different networks need
different link bandwidths (ResNet needs 128 GB/s); the whole experiment
runs in seconds on a laptop.
"""

import time

from _shared import emit, once

from repro.reporting import render_table
from repro.studies import context
from repro.studies.disaggregation import (
    FIGURE17_BANDWIDTHS,
    run_disaggregation_study,
)
from repro.zoo import disaggregation_roster


def test_fig17_disaggregation_speedups(benchmark):
    predictor = context.trained_all_batches("kw", "A100")
    networks = disaggregation_roster()

    start = time.perf_counter()
    results = once(benchmark,
                   lambda: run_disaggregation_study(predictor, networks))
    elapsed = time.perf_counter() - start

    rows = []
    for result in results:
        rows.append((result.network,
                     f"{result.saturation_gbs():.0f}")
                    + tuple(f"{result.speedup_at(b):.2f}"
                            for b in FIGURE17_BANDWIDTHS))
    text = render_table(
        ["network", "saturates at (GB/s)"]
        + [f"{b} GB/s" for b in FIGURE17_BANDWIDTHS],
        rows,
        title=("Figure 17: speedup over a 16 GB/s link for disaggregated-"
               f"memory GPU systems (whole study: {elapsed:.2f}s — paper: "
               "'less than 5 seconds on the author's laptop')"))
    emit("fig17_disaggregation", text)

    by_name = {r.network: r for r in results}
    # the paper's headline: ResNet requires a 128 GB/s network
    assert by_name["resnet50"].saturation_gbs() == 128
    # different networks have different bandwidth requirements
    saturations = {r.saturation_gbs() for r in results}
    assert len(saturations) >= 3
    # speedups are material (paper's bars reach ~2-2.5x)
    assert by_name["resnet50"].speedup_at(512) > 1.5
    # the whole experiment is fast
    assert elapsed < 5.0
