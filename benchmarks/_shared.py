"""Shared plumbing for the benchmark harness.

Each benchmark regenerates one paper artifact (table or figure): it prints
the same rows/series the paper reports and also writes them to
``benchmarks/output/<artifact>.txt`` so EXPERIMENTS.md can reference the
measured values. pytest-benchmark additionally times the representative
computation of each artifact.
"""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def emit(artifact: str, text: str) -> None:
    """Print an artifact's reproduction and persist it to output/."""
    banner = f"\n===== {artifact} =====\n"
    print(banner + text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{artifact}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Time a heavyweight computation a single round and return its value.

    Heavy artifact computations (dataset builds, model training over the
    full campaign) are timed once; fast paths use plain ``benchmark``.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
