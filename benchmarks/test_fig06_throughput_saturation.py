"""Figure 6: achieved TFLOPS saturates once the batch size is large."""

from _shared import emit, once

from repro.gpu import SimulatedGPU, gpu
from repro.reporting import render_table
from repro.studies.observations import throughput_series
from repro.zoo import mobilenet_v2, resnet50, vgg16

BATCH_SIZES = [8, 64, 128, 192, 256, 320, 384, 448, 512]


def test_fig06_throughput_saturates(benchmark):
    device = SimulatedGPU(gpu("A100"))
    networks = [resnet50(), mobilenet_v2(), vgg16()]
    series = once(benchmark,
                  lambda: throughput_series(device, networks, BATCH_SIZES))

    rows = []
    for name, points in series.items():
        rows.append((name,)
                    + tuple(f"{tflops:.2f}" for _, tflops in points))
    text = render_table(
        ["network"] + [f"BS{b}" for b in BATCH_SIZES], rows,
        title="Figure 6: achieved TFLOPS vs batch size on A100 — rises, "
              "then steady once the GPU is fully utilised")
    emit("fig06_throughput_saturation", text)

    for name, points in series.items():
        tflops = [t for _, t in points]
        assert tflops[0] < tflops[-1], f"{name}: throughput must rise"
        # steady at large batch: last three points within 10%
        tail = tflops[-3:]
        assert max(tail) / min(tail) < 1.1, f"{name}: must saturate"
    # the efficiency ordering of Figure 6: VGG > ResNet > MobileNet
    finals = {name: points[-1][1] for name, points in series.items()}
    assert finals["vgg16"] > finals["resnet50"] > finals["mobilenet_v2"]
