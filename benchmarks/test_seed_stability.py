"""Stability: headline errors across train/test split seeds.

The artifact appendix warns that "the error rates ... may vary in their
outcomes due to the random selection of networks in the test set during
each run". This benchmark quantifies that variation: the headline numbers
are re-evaluated under several split seeds and must stay inside the
reproduction bands.
"""

import statistics

from _shared import emit, once

from repro.core import evaluate_model, train_model
from repro.dataset import train_test_split
from repro.reporting import render_table

SEEDS = (3, 7, 11, 19)


def test_seed_stability(benchmark, standard_dataset, index):
    def sweep():
        rows = {}
        for seed in SEEDS:
            train, test = train_test_split(standard_dataset, seed=seed)
            errors = {}
            for name in ("e2e", "lw", "kw"):
                model = train_model(train, name, gpu="A100")
                errors[name] = evaluate_model(
                    model, test, index, gpu="A100",
                    batch_size=512).mean_error
            rows[seed] = errors
        return rows

    rows = once(benchmark, sweep)
    table = [(seed, f"{e['e2e']:.3f}", f"{e['lw']:.3f}", f"{e['kw']:.3f}")
             for seed, e in rows.items()]
    spreads = {
        name: (min(e[name] for e in rows.values()),
               max(e[name] for e in rows.values()),
               statistics.mean(e[name] for e in rows.values()))
        for name in ("e2e", "lw", "kw")
    }
    table.append(("mean", f"{spreads['e2e'][2]:.3f}",
                  f"{spreads['lw'][2]:.3f}", f"{spreads['kw'][2]:.3f}"))
    emit("seed_stability", render_table(
        ["split seed", "E2E", "LW", "KW"], table,
        title="Split-seed stability of the headline errors on A100 "
              "(the artifact notes run-to-run variation; the bands hold)"))

    # the accuracy ladder holds under every seed
    for seed, errors in rows.items():
        assert errors["kw"] < errors["lw"] < errors["e2e"], seed
    # and the bands stay put: KW single-digit, E2E tens of percent
    assert spreads["kw"][1] < 0.10
    assert 0.25 < spreads["e2e"][2] < 0.60
