"""Ablation: how the substrate's imperfection knobs shape model errors.

DESIGN.md argues the reproduced error bands come from specific, named
imperfections in the simulated hardware rather than from tuning the
models. This ablation turns the knobs and checks the causal story:

- with *all* systematic efficiency imperfections off, KW error collapses
  to the launch-pipelining gap (~2%: summed kernel durations include
  startup that wall time hides — the structural effect the
  OverheadAwareModel targets) — the substrate never hard-codes a 7%
  floor;
- the accuracy ladder (KW ≤ LW ≤ E2E) holds under every variant.
"""

import dataclasses

from _shared import emit, once

from repro.core import evaluate_model, networks_by_name, train_model
from repro.dataset import build_dataset, train_test_split
from repro.gpu import TimingConfig, gpu
from repro.reporting import render_table
from repro.zoo import imagenet_roster

CONFIGS = {
    "calibrated (default)": TimingConfig(),
    "no systematic wiggle": dataclasses.replace(
        TimingConfig(), size_wiggle=0.0, class_wiggle=0.0),
    "no kernel tuning spread": dataclasses.replace(
        TimingConfig(), kernel_spread=0.0),
    "sterile (noise only)": dataclasses.replace(
        TimingConfig(), size_wiggle=0.0, class_wiggle=0.0,
        kernel_spread=0.0, arch_spread=0.0),
}


def test_ablation_substrate_imperfections(benchmark):
    networks = imagenet_roster("medium")
    index = networks_by_name(networks)

    def sweep():
        rows = {}
        for label, config in CONFIGS.items():
            data = build_dataset(networks, [gpu("A100")],
                                 batch_sizes=[512], config=config)
            train, test = train_test_split(data)
            errors = {}
            for name in ("e2e", "lw", "kw"):
                model = train_model(train, name, gpu="A100")
                errors[name] = evaluate_model(
                    model, test, index, gpu="A100",
                    batch_size=512).mean_error
            rows[label] = errors
        return rows

    rows = once(benchmark, sweep)
    text = render_table(
        ["substrate variant", "E2E", "LW", "KW"],
        [(label, f"{e['e2e']:.3f}", f"{e['lw']:.3f}", f"{e['kw']:.3f}")
         for label, e in rows.items()],
        title="Ablation: substrate imperfections vs model errors "
              "(the error bands are caused, not hard-coded)")
    emit("ablation_substrate_noise", text)

    default = rows["calibrated (default)"]
    sterile = rows["sterile (noise only)"]
    # a sterile substrate leaves only the launch-pipelining gap
    assert sterile["kw"] < 0.03
    assert sterile["kw"] < default["kw"]
    # every model improves on a cleaner substrate
    for name in ("e2e", "lw", "kw"):
        assert sterile[name] <= default[name] + 0.01, name
    # the ladder holds in every variant
    for label, errors in rows.items():
        assert errors["kw"] <= errors["lw"] <= errors["e2e"], label
