"""Figure 16: DenseNet-169 on TITAN RTX with modified memory bandwidth.

Paper: DenseNet-169 is less bandwidth-hungry than ResNet-50 — its optimal
range is lower (500-700 GB/s), so a customised GPU could trade bandwidth
for cost without losing much performance.
"""

from _shared import emit, once

from repro.gpu import IGKW_TRAIN_GPUS, gpu
from repro.reporting import render_series
from repro.studies import context
from repro.studies.bandwidth_sweep import bandwidth_sweep
from repro.zoo import densenet169, resnet50


def test_fig16_densenet169_bandwidth_sweep(benchmark):
    model = context.trained_igkw(IGKW_TRAIN_GPUS)
    base = gpu("TITAN RTX")
    sweep = once(benchmark,
                 lambda: bandwidth_sweep(model, densenet169(), base, 64))

    points = [(b, t / 1e3) for b, t in sweep.points]
    text = render_series(
        "Figure 16: predicted DenseNet-169 time (ms) on TITAN RTX vs "
        "memory bandwidth (stock = 672 GB/s)", points, "GB/s", "ms")
    emit("fig16_densenet_bw_sweep", text)

    assert sweep.monotonic_non_increasing(tolerance=0.05)

    # reducing the stock bandwidth moderately must not hurt much: the
    # case study's conclusion is that 500 GB/s loses little performance
    stock = sweep.predicted_at(700)
    reduced = sweep.predicted_at(500)
    assert reduced / stock < 1.35


def test_fig15_16_densenet_less_bandwidth_sensitive(benchmark):
    """The cross-figure comparison: between 500 and 1000 GB/s, ResNet-50
    gains more from extra bandwidth than DenseNet-169."""
    model = context.trained_igkw(IGKW_TRAIN_GPUS)
    base = gpu("TITAN RTX")

    def gains():
        out = {}
        for net in (resnet50(), densenet169()):
            sweep = bandwidth_sweep(model, net, base, 64,
                                    bandwidths_gbs=[500, 1000])
            out[net.name] = (sweep.predicted_at(500)
                             / sweep.predicted_at(1000))
        return out

    ratio = once(benchmark, gains)
    emit("fig15_16_sensitivity",
         f"speedup from 500->1000 GB/s: resnet50 {ratio['resnet50']:.2f}x, "
         f"densenet169 {ratio['densenet169']:.2f}x")
    assert ratio["resnet50"] > ratio["densenet169"] * 0.98
