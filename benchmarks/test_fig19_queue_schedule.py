"""Figure 19: scheduling a queue of networks across two GPUs.

Case study 3, part 2: brute-force makespan minimisation driven by
predicted times. Paper: "our model gives a near-perfect workload-balancing
solution ... identical to the oracle execution solution".
"""

from _shared import emit, once

from repro.gpu import gpu
from repro.studies import context
from repro.studies.scheduling_study import STUDY_GPUS, run_scheduling_study
from repro.zoo import scheduling_roster


def test_fig19_queue_schedule(benchmark):
    predictors = {name: context.trained_all_batches("kw", name)
                  for name in STUDY_GPUS}
    networks = scheduling_roster()
    specs = [gpu(name) for name in STUDY_GPUS]

    study = once(benchmark,
                 lambda: run_scheduling_study(predictors, networks, specs))

    text = ("Figure 19: brute-force schedule of the nine-network queue\n\n"
            "Predicted-time schedule:\n"
            + study.predicted_schedule.render()
            + "\n\nOracle (measured-time) schedule:\n"
            + study.oracle_schedule.render()
            + f"\n\nmakespan excess over oracle: "
              f"{study.oracle_gap * 100:.2f}% (paper: identical)")
    emit("fig19_queue_schedule", text)

    # the predicted dispatching scheme matches the oracle's makespan
    # within a few percent
    assert study.oracle_gap < 0.05
    # every job is assigned, and both GPUs get work (load balancing)
    assignment = study.predicted_schedule.assignment
    assert len(assignment) == len(networks)
    assert len(set(assignment.values())) == 2
