"""Figure 12: the Layer-Wise model's S-curve (paper: 28% average error)."""

from _shared import emit, once

from repro.core import evaluate_model, train_model
from repro.studies import context


def test_fig12_lw_model(benchmark, split, index):
    train, test = split
    model = once(benchmark, lambda: train_model(train, "lw", gpu="A100"))
    curve = evaluate_model(model, test, index, gpu="A100", batch_size=512)

    e2e_error = evaluate_model(context.trained("e2e", "A100"), test, index,
                               gpu="A100", batch_size=512).mean_error
    text = curve.render(
        f"Figure 12: LW model on A100, {len(curve.ratios)} test networks "
        f"(paper: mean error 0.28; E2E here: {e2e_error:.3f})")
    text += "\nper-kind fits: " + ", ".join(model.kinds())
    emit("fig12_lw_model", text)

    # the paper's qualitative claim: a modest improvement over E2E
    assert curve.mean_error < e2e_error
    assert 0.10 < curve.mean_error < 0.40


def test_fig12_lw_prediction_speed(benchmark, index):
    model = context.trained("lw", "A100")
    net = index["resnet50"]
    benchmark(lambda: model.predict_network(net, 512))
