"""Extension benchmark: pre-fork scale-out of the prediction service.

The paper's pitch is that a trained predictor answers in microseconds
where a simulator takes hours — which moves the bottleneck to the
serving layer. This study measures how the pre-fork worker pool scales
saturation /predict_batch throughput: the same mixed-model batched load
is replayed against 1-, 2-, and 4-worker deployments of the identical
model set, and the 4-worker deployment must clear 3x the single-worker
rate. Consistent-hash sharding keeps every (model, network) key on one
worker, so per-worker caches stay hot across the replays.

Scaling is a property of the hardware as much as the code: on fewer
than 4 cores the forked workers time-slice one another and the gate
would measure the scheduler, not the architecture. The module
therefore skips unless the runner has at least 4 CPUs — CI runs it on
the non-blocking benchmarks leg.
"""

import os
import tempfile

import pytest

from _shared import emit, once

from repro.reporting import render_table
from repro.service.frontend import ScaledServer
from repro.service.loadgen import LoadGenerator
from repro.service.smoke import train_smoke_models

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="scale-out gate needs >= 4 CPUs to measure parallelism",
)

WORKER_COUNTS = (1, 2, 4)
REQUESTS = 240
BATCH = 8
# offered far above any achievable rate: the generator never sleeps,
# so the achieved rate IS the saturation throughput
SATURATION_RPS = 1e9

NETWORKS = ("alexnet", "resnet18", "resnet50", "vgg11", "mobilenet_v2",
            "squeezenet1_1", "densenet121", "shufflenet_v1")


def _mixed_payloads(models):
    payloads = []
    for model in models:
        for network in NETWORKS:
            payload = {"model": model, "network": network,
                       "batch_size": 64}
            if model == "igkw":
                payload["gpu"] = "A100"
            payloads.append(payload)
    return payloads


def _saturate(models_dir, payloads, workers):
    """Drive one deployment to saturation; return its LoadReport."""
    server = ScaledServer(models_dir, workers=workers,
                          max_queue_depth=1024)
    with server:
        host, port = server.httpd.server_address[:2]
        generator = LoadGenerator(
            f"http://{host}:{port}", payloads, rate_rps=SATURATION_RPS,
            n_requests=REQUESTS, threads=8, seed=0, batch=BATCH)
        # one warm replay fills every worker's sharded caches, the
        # second is the measurement
        generator.run()
        report = LoadGenerator(
            f"http://{host}:{port}", payloads, rate_rps=SATURATION_RPS,
            n_requests=REQUESTS, threads=8, seed=1, batch=BATCH).run()
        restarts = server.pool.restarts_total()
    assert report.failed == 0, report.errors
    assert report.shed == 0
    assert restarts == 0
    return report


def test_ext_scaleout_throughput(benchmark, tmp_path_factory):
    scratch = tmp_path_factory.mktemp("scaleout-models")
    models = train_smoke_models(scratch)
    payloads = _mixed_payloads(models)

    reports = {}
    for workers in WORKER_COUNTS[:-1]:
        reports[workers] = _saturate(scratch, payloads, workers)
    reports[WORKER_COUNTS[-1]] = once(
        benchmark,
        lambda: _saturate(scratch, payloads, WORKER_COUNTS[-1]))

    base = reports[1].achieved_rps
    rows = []
    for workers in WORKER_COUNTS:
        report = reports[workers]
        rows.append((workers,
                     f"{report.achieved_rps:.0f}",
                     f"{report.achieved_rps / base:.2f}x",
                     f"{report.latency_percentile_ms(50):.1f}",
                     f"{report.latency_percentile_ms(99):.1f}"))
    text = render_table(
        ["workers", "items/s", "speedup", "p50 (ms)", "p99 (ms)"],
        rows,
        title=f"Extension: /predict_batch saturation throughput vs "
              f"pre-fork worker count ({len(payloads)} mixed payloads, "
              f"batch={BATCH}, {os.cpu_count()} CPUs)")
    emit("ext_scaleout", text)

    # the acceptance gate: 4 workers clear 3x one worker
    assert reports[4].achieved_rps >= 3.0 * base
    # and scaling is monotone on the way up
    assert reports[2].achieved_rps > base


if __name__ == "__main__":          # manual run without pytest-benchmark
    with tempfile.TemporaryDirectory() as scratch:
        models = train_smoke_models(scratch)
        payloads = _mixed_payloads(models)
        for workers in WORKER_COUNTS:
            report = _saturate(scratch, payloads, workers)
            print(f"{workers} worker(s): {report.achieved_rps:.0f} "
                  f"items/s, p99 "
                  f"{report.latency_percentile_ms(99):.1f} ms")
