"""Figure 8: classifying kernels into input-/operation-/output-driven
groups amplifies the linear relationship."""

from collections import Counter

from _shared import emit, once

from repro.core.classification import classify_kernels
from repro.reporting import render_table


def test_fig08_classification_amplifies_linearity(benchmark,
                                                  standard_dataset):
    a100 = standard_dataset.for_gpu("A100")
    classified = once(benchmark, lambda: classify_kernels(a100))

    populous = {name: entry for name, entry in classified.items()
                if entry.fit.n_samples >= 30}
    label_counts = Counter(entry.label for entry in populous.values())

    rows = []
    for name in sorted(populous)[:40]:
        entry = populous[name]
        r2 = entry.r2_by_feature
        rows.append((name, entry.label, f"{r2['input_nchw']:.3f}",
                     f"{r2['flops']:.3f}", f"{r2['output_nchw']:.3f}"))
    median_r2 = sorted(e.fit.r2 for e in populous.values())[
        len(populous) // 2]
    text = render_table(
        ["kernel", "class", "R2(input)", "R2(flops)", "R2(output)"],
        rows,
        title=(f"Figure 8: kernel classification on A100 | "
               f"{len(classified)} kernels | classes: "
               f"{dict(label_counts)} | median winning R2={median_r2:.3f}"))
    emit("fig08_kernel_classification", text)

    # every class is populated, and the winning fits are near-perfect
    assert set(label_counts) == {"input-driven", "operation-driven",
                                 "output-driven"}
    assert median_r2 > 0.95


def test_fig08_classification_speed(benchmark, standard_dataset):
    """Classification over the full A100 kernel table is itself fast."""
    a100 = standard_dataset.for_gpu("A100")
    classified = benchmark(lambda: classify_kernels(a100))
    assert len(classified) > 50
